#include "core/data_owner.h"

#include <atomic>

#include "bigint/random.h"

namespace sknn {

Result<DataOwner> DataOwner::Create(unsigned key_bits) {
  SKNN_ASSIGN_OR_RETURN(PaillierKeyPair keys,
                        GeneratePaillierKeyPair(key_bits));
  return DataOwner(std::move(keys));
}

unsigned DataOwner::RequiredDistanceBits(std::size_t num_attributes,
                                         unsigned attr_bits) {
  // Max squared distance: m * (2^a - 1)^2.
  BigInt max_attr = BigInt::PowerOfTwo(attr_bits) - BigInt(1);
  BigInt max_dist =
      BigInt(static_cast<int64_t>(num_attributes)) * max_attr * max_attr;
  if (max_dist.IsZero()) return 1;
  return static_cast<unsigned>(max_dist.BitLength());
}

unsigned DataOwner::ImpliedAttrBits(std::size_t num_attributes,
                                    unsigned distance_bits) {
  unsigned b = 0;
  while (b < 62 &&
         RequiredDistanceBits(num_attributes, b + 1) <= distance_bits) {
    ++b;
  }
  return b;
}

Result<EncryptedDatabase> DataOwner::EncryptDatabase(const PlainTable& table,
                                                     unsigned attr_bits,
                                                     ThreadPool* pool) const {
  if (table.empty() || table[0].empty()) {
    return Status::InvalidArgument("EncryptDatabase: empty table");
  }
  const std::size_t m = table[0].size();
  const int64_t bound = int64_t{1} << attr_bits;
  for (const auto& row : table) {
    if (row.size() != m) {
      return Status::InvalidArgument("EncryptDatabase: ragged table");
    }
    for (int64_t v : row) {
      if (v < 0 || v >= bound) {
        return Status::OutOfRange(
            "EncryptDatabase: attribute value " + std::to_string(v) +
            " outside [0, 2^" + std::to_string(attr_bits) + ")");
      }
    }
  }

  EncryptedDatabase db;
  db.records.resize(table.size());
  auto encrypt_row = [&](std::size_t i) {
    Random& rng = Random::ThreadLocal();
    std::vector<Ciphertext> enc_row;
    enc_row.reserve(m);
    for (int64_t v : table[i]) {
      enc_row.push_back(keys_.pk.Encrypt(BigInt(v), rng));
    }
    db.records[i] = std::move(enc_row);
  };
  if (pool != nullptr) {
    pool->ParallelFor(table.size(), encrypt_row);
  } else {
    for (std::size_t i = 0; i < table.size(); ++i) encrypt_row(i);
  }

  db.distance_bits = RequiredDistanceBits(m, attr_bits);
  if (BigInt::PowerOfTwo(db.distance_bits) >= keys_.pk.n()) {
    return Status::InvalidArgument(
        "EncryptDatabase: key too small for the distance domain (need 2^l < "
        "N)");
  }
  return db;
}

}  // namespace sknn
