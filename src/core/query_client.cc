#include "core/query_client.h"

#include "bigint/random.h"

namespace sknn {

std::vector<Ciphertext> QueryClient::EncryptQuery(
    const PlainRecord& query) const {
  Random& rng = Random::ThreadLocal();
  std::vector<Ciphertext> out;
  out.reserve(query.size());
  for (int64_t v : query) {
    out.push_back(pk_.Encrypt(BigInt(v), rng));
  }
  return out;
}

Result<PlainTable> QueryClient::RecoverRecords(
    const std::vector<BigInt>& masked_from_c2,
    const std::vector<BigInt>& masks_from_c1, std::size_t k,
    std::size_t m) const {
  if (masked_from_c2.size() != k * m || masks_from_c1.size() != k * m) {
    return Status::InvalidArgument(
        "RecoverRecords: expected k*m masked values and masks");
  }
  PlainTable out;
  out.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    PlainRecord row;
    row.reserve(m);
    for (std::size_t h = 0; h < m; ++h) {
      BigInt value =
          masked_from_c2[j * m + h].SubMod(masks_from_c1[j * m + h], pk_.n());
      SKNN_ASSIGN_OR_RETURN(int64_t v, value.ToInt64());
      row.push_back(v);
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sknn
