// Encrypted-database persistence: the artifact Alice actually ships to C1.
//
// Binary format (little-endian):
//   magic "SKNNDB01" | u32 n | u32 m | u32 l |
//   n*m ciphertexts, each u32 length + big-endian magnitude bytes
//
// Loading validates the geometry and (optionally, ValidateCiphertexts) that
// every entry is a structurally valid element of Z*_{N^2} under the given
// public key — a corrupted or foreign-key database fails fast instead of
// producing garbage query results. Version skew is its own failure mode: a
// file whose magic says "sknn database, different format revision" (e.g. a
// future SKNNDB02) is rejected with an explicit unsupported-version error,
// distinct from "not an sknn database at all".
//
// A shard manifest (core/sharding.h) is persisted alongside the database in
// a sharded deployment so coordinator and workers provably agree on the
// partitioning:
//   magic "SKNNSH01" | u32 scheme | u32 num_shards | u32 total_records
//
// A cluster manifest (core/clustering.h) is the sidecar of the clustered
// index mode — the record→cluster assignment plus the encrypted centroids:
//   magic "SKNNCL01" | u32 num_clusters | u32 m | u32 n |
//   n*u32 assignment |
//   num_clusters*m centroid ciphertexts, each u32 length + magnitude bytes
#ifndef SKNN_CORE_DB_IO_H_
#define SKNN_CORE_DB_IO_H_

#include <string>

#include "core/clustering.h"
#include "core/sharding.h"
#include "core/types.h"
#include "crypto/paillier.h"

namespace sknn {

Status WriteEncryptedDatabase(const std::string& path,
                              const EncryptedDatabase& db);

Result<EncryptedDatabase> ReadEncryptedDatabase(const std::string& path);

/// \brief Checks every ciphertext against `pk` (in [0, N^2), unit mod N).
Status ValidateCiphertexts(const EncryptedDatabase& db,
                           const PaillierPublicKey& pk);

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest);

/// \brief Reads and re-validates a manifest (MakeShardManifest rules).
Result<ShardManifest> ReadShardManifest(const std::string& path);

/// \brief A manifest only describes ONE database: the record counts must
/// agree, or the partitioning silently misassigns every record. Checked at
/// load time by every process that holds both artifacts (sknn_c1_shard,
/// sknn_c1_server --table ...,manifest=...).
Status ValidateManifestForDatabase(const ShardManifest& manifest,
                                   const EncryptedDatabase& db);

/// \brief Persists a cluster manifest (validated structurally first, so a
/// malformed manifest can never reach disk).
Status WriteClusterManifest(const std::string& path,
                            const ClusterManifest& manifest);

/// \brief Reads an SKNNCL01 cluster manifest; geometry and assignment range
/// are re-validated, version skew and foreign files get distinct errors.
Result<ClusterManifest> ReadClusterManifest(const std::string& path);

}  // namespace sknn

#endif  // SKNN_CORE_DB_IO_H_
