// Sharding the record fan-out: how Epk(T) is partitioned across C1 shard
// workers, and what one shard computes per query.
//
// SkNN_m admits sharding naturally: each shard runs the distance stage
// (SSED + SBD + tie-break augmentation, with GLOBAL record indices) and
// k' = min(k, shard size) local extraction iterations, handing the
// coordinator its winners' encrypted records plus their augmented distance
// bit vectors. Because the augmented values are pairwise distinct across
// the WHOLE database (core/sknn_m.h), the union of local top-k lists
// contains the global top-k, and merging them through the same SMIN-based
// extraction yields records bitwise-identical to the unsharded protocol —
// for any shard count and either partitioning scheme. SkNN_b shards the
// same way with C2's plaintext top-k round per shard.
//
// A ShardManifest is the small, shareable description of the partitioning;
// every worker and the coordinator must agree on it (db_io persists it next
// to the encrypted database).
#ifndef SKNN_CORE_SHARDING_H_
#define SKNN_CORE_SHARDING_H_

#include <cstdint>
#include <vector>

#include "core/query_api.h"
#include "core/sknn_m.h"
#include "core/types.h"
#include "proto/context.h"

namespace sknn {

enum class ShardScheme : uint32_t {
  /// Shard j holds the records [j * ceil-ish block, next block): blocks of
  /// size n/s, the first n % s shards one record larger.
  kContiguous = 0,
  /// Shard j holds the records { i : i % s == j }.
  kRoundRobin = 1,
  /// Shard j holds the records of CLUSTER j of a cluster manifest
  /// (core/clustering.h). The clustered index mode uses this so pruning a
  /// cluster prunes its worker. Unlike the other schemes the index lists
  /// are NOT derivable from the manifest's pure geometry — they come from
  /// the cluster assignment; use PartitionDatabaseByCluster /
  /// ClusterRecordIndices, not ShardRecordIndices.
  kByCluster = 2,
};

const char* ShardSchemeName(ShardScheme scheme);
/// \brief Inverse of ShardSchemeName ("contiguous" / "roundrobin" /
/// "bycluster"); kNotFound for anything else.
Result<ShardScheme> ParseShardScheme(const std::string& name);

/// \brief The partitioning contract between the coordinator and its shard
/// workers: which of the `total_records` global record indices each of the
/// `num_shards` shards holds. Pure geometry — derive index lists with
/// ShardRecordIndices.
struct ShardManifest {
  ShardScheme scheme = ShardScheme::kContiguous;
  std::size_t num_shards = 1;
  std::size_t total_records = 0;

  bool operator==(const ShardManifest&) const = default;
};

/// \brief Validates and builds a manifest: 1 <= num_shards <= total_records
/// (every shard must hold at least one record).
Result<ShardManifest> MakeShardManifest(std::size_t total_records,
                                        std::size_t num_shards,
                                        ShardScheme scheme);

/// \brief The global record indices of `shard` (ascending). Empty for
/// kByCluster — that scheme's indices live in the cluster assignment, not
/// the geometry (see ClusterRecordIndices in core/clustering.h).
std::vector<std::size_t> ShardRecordIndices(const ShardManifest& manifest,
                                            std::size_t shard);

/// \brief One shard's share of the encrypted database plus the global
/// indices of its rows (slice.db.records[i] == full.records[indices[i]]).
struct ShardSlice {
  EncryptedDatabase db;
  std::vector<std::size_t> global_indices;
};

/// \brief Copies the database apart along the manifest. The slices are
/// independent EncryptedDatabases (same distance_bits), so each can be
/// hosted by its own worker process.
Result<std::vector<ShardSlice>> PartitionDatabase(const EncryptedDatabase& db,
                                                  const ShardManifest& manifest);

// Declared in core/clustering.h; forward-declared here so the cluster
// partitioner below does not force every sharding user through that header.
struct ClusterManifest;

/// \brief Slices the database along a cluster manifest: slice c holds the
/// records of cluster c, ascending by global index (the SkNN_m tie-break
/// order). The companion ShardManifest for such a deployment is
/// {kByCluster, num_clusters, total_records}.
Result<std::vector<ShardSlice>> PartitionDatabaseByCluster(
    const EncryptedDatabase& db, const ClusterManifest& clusters);

/// \brief What one shard returns for one query: min(k, shard size) local
/// candidates. For kSecure/kFarthest each candidate is (augmented distance
/// bits, encrypted record) — the access pattern stays hidden, the
/// coordinator re-compares the bits obliviously. For kBasic each candidate
/// is (Epk(d), encrypted record, global index) — the basic protocol reveals
/// the access pattern to C1/C2 by design, and the plaintext index is what
/// lets the merge keep the global lower-index tie-break exact.
struct ShardCandidates {
  std::vector<EncryptedBits> bits;
  std::vector<std::vector<Ciphertext>> records;
  std::vector<Ciphertext> distances;
  std::vector<uint32_t> global_indices;

  std::size_t count() const { return records.size(); }
};

/// \brief Runs the distance + local-top-k stages of `protocol` over one
/// shard. `total_records` is the FULL database size (it sizes the tie-break
/// index field identically on every shard). All C1<->C2 exchanges ride
/// `ctx` — its query id, meter and vectorization apply as for any query.
Result<ShardCandidates> RunShardStage(ProtoContext& ctx,
                                      const ShardSlice& slice,
                                      std::size_t total_records,
                                      const std::vector<Ciphertext>& enc_query,
                                      unsigned k, QueryProtocol protocol,
                                      bool verify_sbd);

}  // namespace sknn

#endif  // SKNN_CORE_SHARDING_H_
