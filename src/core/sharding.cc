#include "core/sharding.h"

#include <algorithm>
#include <string>

#include "core/clustering.h"
#include "proto/ssed.h"

namespace sknn {

const char* ShardSchemeName(ShardScheme scheme) {
  switch (scheme) {
    case ShardScheme::kContiguous:
      return "contiguous";
    case ShardScheme::kRoundRobin:
      return "roundrobin";
    case ShardScheme::kByCluster:
      return "bycluster";
  }
  return "unknown";
}

Result<ShardScheme> ParseShardScheme(const std::string& name) {
  if (name == "contiguous") return ShardScheme::kContiguous;
  if (name == "roundrobin") return ShardScheme::kRoundRobin;
  if (name == "bycluster") return ShardScheme::kByCluster;
  return Status::NotFound("unknown shard scheme '" + name +
                          "' (want contiguous, roundrobin, or bycluster)");
}

Result<ShardManifest> MakeShardManifest(std::size_t total_records,
                                        std::size_t num_shards,
                                        ShardScheme scheme) {
  if (total_records == 0) {
    return Status::InvalidArgument("ShardManifest: empty database");
  }
  if (num_shards == 0 || num_shards > total_records) {
    return Status::InvalidArgument(
        "ShardManifest: num_shards must be in [1, total_records]; got " +
        std::to_string(num_shards) + " shards for " +
        std::to_string(total_records) + " records");
  }
  if (scheme != ShardScheme::kContiguous &&
      scheme != ShardScheme::kRoundRobin &&
      scheme != ShardScheme::kByCluster) {
    return Status::InvalidArgument("ShardManifest: unknown scheme");
  }
  ShardManifest manifest;
  manifest.scheme = scheme;
  manifest.num_shards = num_shards;
  manifest.total_records = total_records;
  return manifest;
}

std::vector<std::size_t> ShardRecordIndices(const ShardManifest& manifest,
                                            std::size_t shard) {
  std::vector<std::size_t> indices;
  const std::size_t n = manifest.total_records;
  const std::size_t s = manifest.num_shards;
  if (shard >= s || n == 0) return indices;
  // kByCluster indices are data-dependent (they live in the cluster
  // assignment); pure geometry cannot produce them.
  if (manifest.scheme == ShardScheme::kByCluster) return indices;
  if (manifest.scheme == ShardScheme::kRoundRobin) {
    for (std::size_t i = shard; i < n; i += s) indices.push_back(i);
    return indices;
  }
  // Contiguous: the first (n % s) shards hold ceil(n/s), the rest floor.
  const std::size_t base = n / s, extra = n % s;
  const std::size_t begin =
      shard * base + std::min<std::size_t>(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  indices.reserve(size);
  for (std::size_t i = begin; i < begin + size; ++i) indices.push_back(i);
  return indices;
}

Result<std::vector<ShardSlice>> PartitionDatabase(
    const EncryptedDatabase& db, const ShardManifest& manifest) {
  if (db.num_records() != manifest.total_records) {
    return Status::InvalidArgument(
        "PartitionDatabase: manifest is for " +
        std::to_string(manifest.total_records) + " records, database has " +
        std::to_string(db.num_records()));
  }
  std::vector<ShardSlice> slices;
  slices.reserve(manifest.num_shards);
  for (std::size_t shard = 0; shard < manifest.num_shards; ++shard) {
    ShardSlice slice;
    slice.global_indices = ShardRecordIndices(manifest, shard);
    if (slice.global_indices.empty()) {
      return Status::Internal("PartitionDatabase: empty shard " +
                              std::to_string(shard));
    }
    slice.db.distance_bits = db.distance_bits;
    slice.db.records.reserve(slice.global_indices.size());
    for (std::size_t gidx : slice.global_indices) {
      slice.db.records.push_back(db.records[gidx]);
    }
    slices.push_back(std::move(slice));
  }
  return slices;
}

Result<std::vector<ShardSlice>> PartitionDatabaseByCluster(
    const EncryptedDatabase& db, const ClusterManifest& clusters) {
  if (Status valid = ValidateClusterManifestForDatabase(clusters, db);
      !valid.ok()) {
    return valid;
  }
  std::vector<ShardSlice> slices(clusters.num_clusters);
  for (auto& slice : slices) slice.db.distance_bits = db.distance_bits;
  // One ascending pass keeps every slice in global-index order — the
  // SkNN_m tie-break depends on it.
  for (std::size_t i = 0; i < clusters.assignment.size(); ++i) {
    ShardSlice& slice = slices[clusters.assignment[i]];
    slice.global_indices.push_back(i);
    slice.db.records.push_back(db.records[i]);
  }
  for (std::size_t c = 0; c < slices.size(); ++c) {
    if (slices[c].global_indices.empty()) {
      return Status::InvalidArgument(
          "PartitionDatabaseByCluster: cluster " + std::to_string(c) +
          " is empty — rebuild the manifest (k-means reseeds empties, so "
          "an empty cluster means a corrupted or hand-edited manifest)");
    }
  }
  return slices;
}

Result<ShardCandidates> RunShardStage(ProtoContext& ctx,
                                      const ShardSlice& slice,
                                      std::size_t total_records,
                                      const std::vector<Ciphertext>& enc_query,
                                      unsigned k, QueryProtocol protocol,
                                      bool verify_sbd) {
  const std::size_t shard_n = slice.db.num_records();
  if (shard_n == 0 || slice.global_indices.size() != shard_n) {
    return Status::InvalidArgument("RunShardStage: malformed shard slice");
  }
  if (enc_query.size() != slice.db.num_attributes()) {
    return Status::InvalidArgument("RunShardStage: query dimension mismatch");
  }
  if (k == 0) {
    return Status::InvalidArgument("RunShardStage: k must be at least 1");
  }
  // A shard smaller than k contributes everything it has; the coordinator's
  // merge pool still holds at least k candidates overall.
  const unsigned local_k =
      static_cast<unsigned>(std::min<std::size_t>(k, shard_n));

  ShardCandidates out;
  if (protocol == QueryProtocol::kBasic) {
    SKNN_ASSIGN_OR_RETURN(
        std::vector<Ciphertext> dist,
        SecureSquaredDistanceBatch(ctx, slice.db.records, enc_query));
    // Ties resolve to the lower position, and positions within a shard are
    // in ascending global-index order for both schemes — so the local list
    // is exactly the global order restricted to this shard.
    SKNN_ASSIGN_OR_RETURN(std::vector<uint32_t> local,
                          SecureTopKIndices(ctx, dist, local_k));
    for (uint32_t idx : local) {
      out.distances.push_back(dist[idx]);
      out.records.push_back(slice.db.records[idx]);
      out.global_indices.push_back(
          static_cast<uint32_t>(slice.global_indices[idx]));
    }
    return out;
  }

  SKNN_ASSIGN_OR_RETURN(
      std::vector<EncryptedBits> bits,
      PrepareDistanceBits(ctx, slice.db.records, enc_query,
                          slice.db.distance_bits, &slice.global_indices,
                          total_records,
                          protocol == QueryProtocol::kFarthest, verify_sbd));
  SKNN_ASSIGN_OR_RETURN(TopKExtraction top,
                        ExtractTopK(ctx, slice.db.records, bits, local_k,
                                    /*keep_winner_bits=*/true));
  out.bits = std::move(top.winner_bits);
  out.records = std::move(top.records);
  return out;
}

}  // namespace sknn
