// ShardCoordinator — fans one query out to all shards and merges their
// candidates into the global answer.
//
// Two shard placements behind one interface:
//   * local  — the shard slices live in this process and their stages run
//     on coordinator-spawned threads, all sharing the engine's C2 link
//     (concurrent exchanges demux by correlation id; per-query attribution
//     by the shared query id);
//   * remote — each shard is a sknn_c1_shard worker process reached over
//     the RPC stack (net/shard_wire.h), with its own copy of its slice and
//     its own C2 connection. A dead or unreachable worker surfaces as
//     StatusCode::kUnavailable, never as a hang.
//
// The merge is the same machinery as the unsharded protocol, restricted to
// the s*k candidates: for kSecure/kFarthest, k iterations of ExtractTopK
// over the candidates' augmented bit vectors (every candidate embeds its
// global index, so the total order — and therefore the result — is
// bitwise-identical to the unsharded SknnEngine::Query); for kBasic, one
// more plaintext top-k round at C2 over the candidate distances, ordered by
// global index so the lower-index tie-break stays exact. The coordinator
// finishes with the usual masked hand-off to Bob.
#ifndef SKNN_CORE_SHARD_COORDINATOR_H_
#define SKNN_CORE_SHARD_COORDINATOR_H_

#include <memory>
#include <vector>

#include "core/query_api.h"
#include "core/sharding.h"
#include "net/rpc.h"
#include "net/shard_wire.h"

namespace sknn {

class ShardCoordinator {
 public:
  /// \brief Per-run instrumentation, merged into QueryResponse by the
  /// engine.
  struct RunStats {
    std::vector<ShardQueryStats> shards;
    double merge_seconds = 0;
  };

  /// \brief In-process shard set: partitions `db` along `manifest` and runs
  /// every shard stage on coordinator threads against the caller's C2 link.
  static Result<std::unique_ptr<ShardCoordinator>> CreateLocal(
      const EncryptedDatabase& db, const ShardManifest& manifest,
      bool verify_sbd);

  /// \brief Remote shard workers: pings every link, validates that the
  /// workers agree on one manifest and cover shards {0..s-1} exactly (in
  /// any connection order), and keeps one RPC client per shard. The
  /// database geometry (total records, attributes, distance bits) is
  /// learned from the workers — the coordinator never needs Epk(T).
  static Result<std::unique_ptr<ShardCoordinator>> CreateRemote(
      std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd);

  ~ShardCoordinator();

  /// \brief One query: fan out, collect s*k candidates, merge, mask-and-
  /// ship to Bob. All merge exchanges (and, in local mode, the shard
  /// stages) ride `ctx`'s query id and meter. `breakdown` receives the
  /// merge's sminn/extract/update phases.
  Result<CloudQueryOutput> Run(ProtoContext& ctx, const QueryRequest& request,
                               const std::vector<Ciphertext>& enc_query,
                               SkNNmBreakdown* breakdown, RunStats* stats);

  const ShardManifest& manifest() const { return manifest_; }
  /// \brief True when the shards are worker processes (CreateRemote) rather
  /// than in-process slices.
  bool remote() const { return !workers_.empty(); }
  /// \brief Database geometry (remote mode reports the workers'; local mode
  /// mirrors the partitioned db).
  std::size_t num_attributes() const { return num_attributes_; }
  unsigned distance_bits() const { return distance_bits_; }

 private:
  ShardCoordinator() = default;

  Result<ShardCandidates> RunShard(ProtoContext& ctx, std::size_t shard,
                                   const QueryRequest& request,
                                   const std::vector<Ciphertext>& enc_query,
                                   ShardQueryStats* stats);
  Result<CloudQueryOutput> MergeSecure(
      ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k,
      SkNNmBreakdown* breakdown);
  Result<CloudQueryOutput> MergeBasic(ProtoContext& ctx,
                                      std::vector<ShardCandidates> candidates,
                                      unsigned k);

  ShardManifest manifest_;
  bool verify_sbd_ = true;
  std::size_t num_attributes_ = 0;
  unsigned distance_bits_ = 0;
  /// Local mode: one slice per shard.
  std::vector<ShardSlice> slices_;
  /// Remote mode: one standing RPC client per shard, indexed by shard.
  std::vector<std::unique_ptr<RpcClient>> workers_;
};

}  // namespace sknn

#endif  // SKNN_CORE_SHARD_COORDINATOR_H_
