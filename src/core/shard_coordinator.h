// ShardCoordinator — fans one query out to all shards and merges their
// candidates into the global answer.
//
// Two shard placements behind one interface:
//   * local  — the shard slices live in this process and their stages run
//     on coordinator-spawned threads, all sharing the engine's C2 link
//     (concurrent exchanges demux by correlation id; per-query attribution
//     by the shared query id);
//   * remote — each shard is served by one or MORE sknn_c1_shard worker
//     processes (replicas) reached over the RPC stack (net/shard_wire.h),
//     each with its own copy of its slice and its own C2 connection. A
//     failed or timed-out shard stage retries on the next healthy replica
//     WITHIN the same query — and because the deterministic tie-break makes
//     every answer a pure function of (table, query, k), failover is
//     invisible in the results. Only when every replica of a shard fails
//     does the query surface kUnavailable (or kDeadlineExceeded, if the
//     per-query deadline ran out first). Per-replica health is tracked by a
//     background ping-probe thread: consecutive failures eject a replica
//     from the preferred rotation, a successful probe (after an automatic
//     redial, when the worker's address is known) reinstates it.
//
// The merge is the same machinery as the unsharded protocol, restricted to
// the s*k candidates: for kSecure/kFarthest, k iterations of ExtractTopK
// over the candidates' augmented bit vectors (every candidate embeds its
// global index, so the total order — and therefore the result — is
// bitwise-identical to the unsharded SknnEngine::Query); for kBasic, one
// more plaintext top-k round at C2 over the candidate distances, ordered by
// global index so the lower-index tie-break stays exact. The coordinator
// finishes with the usual masked hand-off to Bob.
#ifndef SKNN_CORE_SHARD_COORDINATOR_H_
#define SKNN_CORE_SHARD_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query_api.h"
#include "core/sharding.h"
#include "net/rpc.h"
#include "net/shard_wire.h"

namespace sknn {

class ShardCoordinator {
 public:
  /// \brief Per-run instrumentation, merged into QueryResponse by the
  /// engine.
  struct RunStats {
    std::vector<ShardQueryStats> shards;
    double merge_seconds = 0;
  };

  /// \brief Replication knobs for CreateRemote. Defaults reproduce sensible
  /// production behavior; tests shrink the probe interval.
  struct RemoteOptions {
    /// Per-link redial addresses ("host:port"), parallel to `worker_links`;
    /// empty vector or empty entries disable redial for those links. A
    /// replica with a redial address is automatically re-connected by the
    /// probe thread after its link dies (e.g. the worker was kill -9'd and
    /// restarted on the same port).
    std::vector<std::string> redial_addrs;
    /// Health-probe cadence. Zero disables the probe thread (ejection then
    /// only happens on query-path failures, reinstatement on query-path
    /// successes).
    std::chrono::milliseconds probe_interval{500};
    /// Consecutive failures (query or probe) before a replica is ejected
    /// from the preferred rotation. Ejected replicas are still tried as a
    /// last resort when every healthy replica of the shard has failed.
    uint32_t eject_after_failures = 2;
  };

  /// \brief One replica's health, as reported by ReplicaStatuses() (and,
  /// over the wire, by the kHealth control-plane frame).
  struct ReplicaStatus {
    uint32_t shard = 0;
    uint32_t replica = 0;
    bool healthy = true;
    uint32_t consecutive_failures = 0;
    /// Times a query failed over AWAY from this replica.
    uint64_t failovers = 0;
    /// Seconds since this replica last answered anything (probe or query);
    /// negative = never.
    double last_ok_age_seconds = -1;
  };

  /// \brief In-process shard set: partitions `db` along `manifest` and runs
  /// every shard stage on coordinator threads against the caller's C2 link.
  static Result<std::unique_ptr<ShardCoordinator>> CreateLocal(
      const EncryptedDatabase& db, const ShardManifest& manifest,
      bool verify_sbd);

  /// \brief In-process shard set partitioned by CLUSTER: shard c holds the
  /// records of cluster c (ShardScheme::kByCluster, one shard per cluster).
  /// This is the topology behind the clustered index mode — pruning a
  /// cluster skips its shard's stage entirely.
  static Result<std::unique_ptr<ShardCoordinator>> CreateLocal(
      const EncryptedDatabase& db, const ClusterManifest& clusters,
      bool verify_sbd);

  /// \brief Remote shard workers: pings every link, validates that the
  /// workers agree on one manifest and that every shard {0..s-1} is covered
  /// by at least one worker (in any connection order), and groups the RPC
  /// clients by their REPORTED shard — several workers for one shard are
  /// replicas. The database geometry (total records, attributes, distance
  /// bits) is learned from the workers — the coordinator never needs
  /// Epk(T).
  static Result<std::unique_ptr<ShardCoordinator>> CreateRemote(
      std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd,
      RemoteOptions remote_options);
  /// \brief CreateRemote with default RemoteOptions. (An overload rather
  /// than a `= {}` default argument: GCC cannot evaluate a nested
  /// aggregate's member initializers in a default argument of the
  /// enclosing class.)
  static Result<std::unique_ptr<ShardCoordinator>> CreateRemote(
      std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd);

  ~ShardCoordinator();

  /// \brief One query: fan out, collect the candidates, merge, mask-and-
  /// ship to Bob. All merge exchanges (and, in local mode, the shard
  /// stages) ride `ctx`'s query id, meter and deadline. `breakdown`
  /// receives the merge's sminn/extract/update phases.
  ///
  /// `active_shards` restricts the fan-out (clustered pruning): only the
  /// named shards run their stage — the others never see the query and
  /// report `pruned = 1` in their stats entry. nullptr = all shards. The
  /// caller must guarantee the surviving shards hold at least k records.
  Result<CloudQueryOutput> Run(ProtoContext& ctx, const QueryRequest& request,
                               const std::vector<Ciphertext>& enc_query,
                               SkNNmBreakdown* breakdown, RunStats* stats,
                               const std::vector<uint32_t>* active_shards =
                                   nullptr);

  const ShardManifest& manifest() const { return manifest_; }
  /// \brief True when the shards are worker processes (CreateRemote) rather
  /// than in-process slices.
  bool remote() const { return !groups_.empty(); }
  /// \brief Replicas serving shard `shard` (remote mode; local mode: 0).
  std::size_t replicas(std::size_t shard) const {
    return shard < groups_.size() ? groups_[shard].replicas.size() : 0;
  }
  /// \brief Live health snapshot of every replica of every shard (remote
  /// mode; empty for local shard sets).
  std::vector<ReplicaStatus> ReplicaStatuses() const;
  /// \brief Database geometry (remote mode reports the workers'; local mode
  /// mirrors the partitioned db).
  std::size_t num_attributes() const { return num_attributes_; }
  unsigned distance_bits() const { return distance_bits_; }
  /// \brief Records shard `shard` holds (local: its slice; remote: as the
  /// workers reported at connect). 0 for an out-of-range shard.
  uint32_t shard_records(std::size_t shard) const {
    return shard < shard_records_.size() ? shard_records_[shard] : 0;
  }

 private:
  /// One remote worker process serving one shard. The client is swappable
  /// (under the mutex) so the probe thread can redial a dead worker without
  /// disturbing callers, who take a shared_ptr copy per call.
  struct Replica {
    mutable Mutex mutex;
    std::shared_ptr<RpcClient> client GUARDED_BY(mutex);
    std::string redial_addr;  // immutable after construction; "" = no redial
    std::atomic<bool> healthy{true};
    std::atomic<uint32_t> consecutive_failures{0};
    std::atomic<uint64_t> failovers{0};
    /// steady_clock nanoseconds of the last successful answer; 0 = never.
    std::atomic<int64_t> last_ok_ns{0};

    std::shared_ptr<RpcClient> GetClient() const {
      MutexLock lock(&mutex);
      return client;
    }
    void MarkOk() {
      consecutive_failures.store(0, std::memory_order_relaxed);
      healthy.store(true, std::memory_order_relaxed);
      last_ok_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
    }
    void MarkFailed(uint32_t eject_after) {
      const uint32_t failures =
          consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
      if (failures >= eject_after) {
        healthy.store(false, std::memory_order_relaxed);
      }
    }
  };

  /// All replicas of one shard. `preferred` rotates to the last replica
  /// that answered, so steady state sends every stage to a known-good
  /// worker first.
  struct ReplicaGroup {
    std::vector<std::unique_ptr<Replica>> replicas;
    std::atomic<std::size_t> preferred{0};
  };

  ShardCoordinator() = default;

  Result<ShardCandidates> RunShard(ProtoContext& ctx, std::size_t shard,
                                   const QueryRequest& request,
                                   const std::vector<Ciphertext>& enc_query,
                                   ShardQueryStats* stats);
  Result<ShardCandidates> RunShardRemote(
      ProtoContext& ctx, std::size_t shard, const QueryRequest& request,
      const std::vector<Ciphertext>& enc_query, ShardQueryStats* stats);
  Result<CloudQueryOutput> MergeSecure(
      ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k,
      SkNNmBreakdown* breakdown);
  Result<CloudQueryOutput> MergeBasic(ProtoContext& ctx,
                                      std::vector<ShardCandidates> candidates,
                                      unsigned k);
  void ProbeLoop();
  void ProbeReplica(Replica& replica);

  ShardManifest manifest_;
  bool verify_sbd_ = true;
  std::size_t num_attributes_ = 0;
  unsigned distance_bits_ = 0;
  /// Record count per shard, both modes (clustered shards are unequal, and
  /// the stats report them either way).
  std::vector<uint32_t> shard_records_;
  /// Local mode: one slice per shard.
  std::vector<ShardSlice> slices_;
  /// Remote mode: one replica group per shard, indexed by shard.
  std::vector<ReplicaGroup> groups_;
  RemoteOptions remote_options_;
  /// Background health probe (remote mode, probe_interval > 0).
  mutable Mutex probe_mutex_;
  bool probe_stop_ GUARDED_BY(probe_mutex_) = false;
  CondVar probe_cv_;
  std::thread probe_thread_;
};

}  // namespace sknn

#endif  // SKNN_CORE_SHARD_COORDINATOR_H_
