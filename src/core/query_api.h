// The request/response vocabulary of the serveable engine.
//
// The paper's deployment serves many Bobs against one outsourced database;
// this header is the shape of that traffic. A QueryRequest names everything
// one round trip needs — the record, k, which protocol, and which
// measurements to collect — and a QueryResponse carries the records Bob
// reconstructs plus the per-query instrumentation the evaluation section
// reports. SknnEngine::Query runs one request synchronously; Submit and
// QueryBatch pipeline independent requests over the C1 thread pool and the
// correlation-id RPC demux (each in-flight query is isolated by its query
// id end to end: Bob outbox, traffic meter, operation ledger).
#ifndef SKNN_CORE_QUERY_API_H_
#define SKNN_CORE_QUERY_API_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace sknn {

/// \brief Which protocol a request runs.
enum class QueryProtocol {
  /// SkNN_b (Algorithm 5): efficient baseline; C2 learns distances and both
  /// clouds learn the data access pattern.
  kBasic,
  /// SkNN_m (Algorithm 6): fully secure k nearest neighbors.
  kSecure,
  /// SkNN_m machinery on complemented distances: fully secure k FARTHEST
  /// neighbors (outlier detection building block).
  kFarthest,
};

const char* QueryProtocolName(QueryProtocol protocol);

/// \brief Which index a request consults (orthogonal to QueryProtocol).
enum class IndexMode : uint32_t {
  /// Scan every record — the paper-exact protocols, and the differential
  /// oracle for the clustered mode.
  kExact = 0,
  /// Learned k-means index: one secure centroid-scoring round prunes to the
  /// closest probe_clusters clusters, then the exact machinery runs over
  /// the surviving candidates only. Approximate — the recall knob is
  /// QueryRequest::probe_clusters. Requires the table to have been built
  /// with a cluster manifest; rejected with kInvalidArgument otherwise.
  kClustered = 1,
};

/// \brief One Bob query, self-describing. Validated up front by the engine:
/// k must be in [1, n], the record's dimension must match the database, and
/// every attribute must lie in [0, 2^attr_bits).
struct QueryRequest {
  /// The plaintext query record Q (encrypted attribute-wise by Bob's
  /// QueryClient before anything reaches the clouds).
  PlainRecord record;
  /// Number of neighbors requested.
  unsigned k = 1;
  QueryProtocol protocol = QueryProtocol::kSecure;
  /// Collect the per-phase SkNN_m wall-clock split (Section 5.2). Ignored by
  /// the basic protocol, which has no phases to split.
  bool want_breakdown = true;
  /// Collect exact per-query Paillier operation counts across both clouds
  /// (Section 4.4 accounting).
  bool want_op_counts = true;
  /// Which table of a multi-table serving front end this query targets
  /// (serve/table_registry.h). Empty = the sole table, which is both the
  /// in-process engine's shape (an engine IS one table; it ignores this
  /// field) and the pre-multi-table client shape. A front end serving
  /// several tables rejects the empty name with kInvalidArgument and an
  /// unknown name with kNotFound. Kept after the established aggregate
  /// initialization order {record, k, protocol, ...} so it stays valid.
  std::string table;
  /// Per-query deadline in milliseconds, 0 = none. The serving stack bounds
  /// every blocking wait (C2 exchanges, shard-worker RPCs) by the time
  /// remaining and fails the query with kDeadlineExceeded once it runs out —
  /// a hung worker costs the deadline, never a stall. Appended after `table`
  /// for the same aggregate-initialization reason.
  uint32_t deadline_ms = 0;
  /// Which index to consult (aggregate-init: appended after deadline_ms).
  IndexMode index_mode = IndexMode::kExact;
  /// Clustered mode's recall knob: how many nearest clusters survive the
  /// pruning round. Clamped to [1, num_clusters]; probing every cluster is
  /// bitwise-identical to exact mode. More clusters are probed than asked
  /// for when the first probe_clusters clusters hold fewer than k records.
  /// Ignored in exact mode.
  uint32_t probe_clusters = 1;
  /// Bypass the serving front end's result cache for this request: the query
  /// executes the full protocol even when an identical response is cached
  /// (the hit is neither served nor refreshed). The response is still
  /// eligible to be inserted. In-process engines have no cache and ignore
  /// this. Appended after probe_clusters (aggregate-init order).
  bool no_cache = false;
};

/// \brief One shard's share of a sharded query (core/shard_coordinator.h):
/// the distance + local-top-k stage it executed on its slice of Epk(T).
struct ShardQueryStats {
  /// Shard index within the manifest.
  uint32_t shard = 0;
  /// Candidates this shard contributed to the merge (min(k, shard size)).
  uint32_t candidates = 0;
  /// Wall time of the shard stage as the coordinator observed it.
  double seconds = 0;
  /// The shard's own C1<->C2 traffic during its stage.
  TrafficStats traffic;
  /// C1-side Paillier operations of the shard stage (a remote worker
  /// reports its own; already included in QueryResponse::ops).
  OpSnapshot ops;
  /// Which replica of the shard answered (remote mode; 0 when unreplicated
  /// or local).
  uint32_t replica = 0;
  /// Replica attempts that failed before this shard's stage succeeded —
  /// nonzero means the query transparently failed over.
  uint32_t failovers = 0;
  /// 1 when the clustered pruning round skipped this shard entirely (it
  /// never saw the query); its candidates/seconds/traffic/ops are all zero.
  uint32_t pruned = 0;
  /// Records this shard holds — with `candidates` and `pruned`, the numbers
  /// behind the "per-query work proportional to the candidate set" claim.
  uint32_t shard_records = 0;
};

/// \brief Everything Bob ends up with after one request, plus the
/// measurements the evaluation section reports. All instrumentation is
/// per-query exact even when many requests run concurrently.
struct QueryResponse {
  /// The k records, in protocol order (nearest first; farthest first for
  /// QueryProtocol::kFarthest), exactly as Bob reconstructs them.
  PlainTable records;

  /// Bob-side cost: encrypting Q plus final unmasking — the paper's
  /// "4 ms / 17 ms" end-user numbers.
  double bob_seconds = 0;
  /// Cloud-side cost: everything between Epk(Q) arriving at C1 and the
  /// masked result leaving for Bob.
  double cloud_seconds = 0;
  /// This query's C1<->C2 communication (exact, counted per exchange).
  TrafficStats traffic;
  /// This query's Paillier operations across C1 and C2 (populated when
  /// QueryRequest::want_op_counts).
  OpSnapshot ops;
  /// Phase breakdown (populated for kSecure/kFarthest when
  /// QueryRequest::want_breakdown). Under sharded execution the ssed/sbd
  /// phases happen inside the shards; the merge's sminn/extract/update and
  /// the finalize phase are the coordinator's.
  SkNNmBreakdown breakdown;
  /// Per-shard stage instrumentation (empty for unsharded execution). The
  /// shard stages' traffic and ops are already folded into `traffic` and
  /// `ops` above; this is the split.
  std::vector<ShardQueryStats> shards;
  /// Wall time of the coordinator's global candidate merge (sharded only).
  double merge_seconds = 0;
  /// True when a serving front end answered this query from its result
  /// cache (serve/qos/result_cache.h) instead of running the protocol.
  /// Always false from an in-process engine. Appended after merge_seconds
  /// (aggregate-init order), like every revision's new fields.
  bool cache_hit = false;
  /// The k×m result attributes encrypted under the TABLE's Paillier public
  /// key, row-major, each ciphertext serialized as BigInt bytes — populated
  /// by a serving front end for cache-eligible queries. On a cache hit these
  /// are RerandomizeMany-refreshed, so two hits on the same entry are
  /// unlinkable on the wire while decrypting to bitwise-identical records
  /// (the differential proof tests/test_qos.cc runs). Empty from in-process
  /// engines and for cache-bypassed (no_cache) requests.
  std::vector<std::vector<uint8_t>> encrypted_records;
};

}  // namespace sknn

#endif  // SKNN_CORE_QUERY_API_H_
