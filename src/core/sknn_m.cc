#include "core/sknn_m.h"

#include <bit>

#include "common/stopwatch.h"
#include "proto/permutation.h"
#include "proto/sbor.h"
#include "proto/sm.h"
#include "proto/smax.h"
#include "proto/smin.h"
#include "proto/ssed.h"

namespace sknn {

unsigned TieBreakIndexBits(std::size_t total_records) {
  if (total_records <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(total_records - 1));
}

Result<std::vector<EncryptedBits>> PrepareDistanceBits(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    const std::vector<Ciphertext>& enc_query, unsigned l,
    const std::vector<std::size_t>* global_indices, std::size_t total_records,
    bool farthest, bool verify_sbd, SkNNmBreakdown* breakdown) {
  const std::size_t n = records.size();
  if (n == 0) {
    return Status::InvalidArgument("PrepareDistanceBits: no records");
  }
  if (l == 0) {
    return Status::InvalidArgument("PrepareDistanceBits: l must be positive");
  }
  if (global_indices != nullptr && global_indices->size() != n) {
    return Status::InvalidArgument(
        "PrepareDistanceBits: global_indices size mismatch");
  }
  if (total_records < n) {
    return Status::InvalidArgument(
        "PrepareDistanceBits: total_records smaller than the record set");
  }
  const PaillierPublicKey& pk = ctx.pk();
  SkNNmBreakdown local_breakdown;
  SkNNmBreakdown& bd = breakdown != nullptr ? *breakdown : local_breakdown;
  Stopwatch phase;

  // Step 2: Epk(d_i) by SSED, then [d_i] by SBD.
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> dist,
                        SecureSquaredDistanceBatch(ctx, records, enc_query));
  bd.ssed_seconds += phase.ElapsedSeconds();
  phase.Reset();

  SbdOptions sbd_opts;
  sbd_opts.l = l;
  sbd_opts.verify = verify_sbd;
  SKNN_ASSIGN_OR_RETURN(std::vector<EncryptedBits> bits,
                        BitDecomposeBatch(ctx, dist, sbd_opts));

  // Tie-break augmentation: [flag = 0 | d_i (complemented for farthest) |
  // global index], MSB first. The compared values are now pairwise
  // distinct, so every SMIN_n has a unique winner and C2's min pointer sees
  // exactly one zero. The flag bit keeps clamped (already extracted)
  // records strictly above every live one even when a live record's
  // distance and index bits are all ones.
  const unsigned idx_bits = TieBreakIndexBits(total_records);
  ctx.ForEach(n, [&](std::size_t i) {
    Random& rng = Random::ThreadLocal();
    EncryptedBits aug;
    aug.reserve(1 + l + idx_bits);
    aug.push_back(pk.Encrypt(BigInt(0), rng));
    EncryptedBits d_bits =
        farthest ? ComplementBits(pk, bits[i]) : std::move(bits[i]);
    for (auto& b : d_bits) aug.push_back(std::move(b));
    const std::size_t gidx =
        global_indices != nullptr ? (*global_indices)[i] : i;
    for (unsigned g = idx_bits; g-- > 0;) {
      aug.push_back(pk.Encrypt(BigInt(int64_t{(gidx >> g) & 1}), rng));
    }
    bits[i] = std::move(aug);
  });
  bd.sbd_seconds += phase.ElapsedSeconds();
  return bits;
}

Result<TopKExtraction> ExtractTopK(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    std::vector<EncryptedBits>& bits, unsigned k, bool keep_winner_bits,
    SkNNmBreakdown* breakdown) {
  const std::size_t n = records.size();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("ExtractTopK: k must be in [1, n]");
  }
  if (bits.size() != n) {
    return Status::InvalidArgument(
        "ExtractTopK: records / bit vectors size mismatch");
  }
  const std::size_t m = records[0].size();
  const std::size_t l_aug = bits[0].size();
  for (std::size_t i = 0; i < n; ++i) {
    if (records[i].size() != m || bits[i].size() != l_aug) {
      return Status::InvalidArgument("ExtractTopK: ragged inputs");
    }
  }
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& big_n = pk.n();
  SkNNmBreakdown local_breakdown;
  SkNNmBreakdown& bd = breakdown != nullptr ? *breakdown : local_breakdown;
  Stopwatch phase;

  TopKExtraction out;
  out.records.reserve(k);
  if (keep_winner_bits) out.winner_bits.reserve(k);

  for (unsigned s = 1; s <= k; ++s) {
    // Step 3(a): [d_min] over the current (possibly clamped) bit vectors.
    phase.Reset();
    SKNN_ASSIGN_OR_RETURN(EncryptedBits dmin_bits, SecureMinN(ctx, bits));
    bd.sminn_seconds += phase.ElapsedSeconds();

    // Step 3(b): tau_i = Epk(r_i * (d_min - d_i)), permuted. Epk(d_i) is
    // recomposed from the current bits (they carry the augmentation and,
    // from the second iteration on, the clamps).
    phase.Reset();
    Ciphertext e_dmin = ComposeFromBits(pk, dmin_bits);
    std::vector<Ciphertext> tau(n);
    ctx.ForEach(n, [&](std::size_t i) {
      Random& rng = Random::ThreadLocal();
      Ciphertext e_di = ComposeFromBits(pk, bits[i]);
      Ciphertext diff = pk.Sub(e_dmin, e_di);
      tau[i] = pk.MulScalar(diff, rng.NonZeroBelow(big_n));
    });
    Permutation pi = Permutation::Sample(n, Random::ThreadLocal());
    std::vector<Ciphertext> tau_perm = pi.Apply(tau);
    std::vector<BigInt> beta;
    beta.reserve(n);
    for (auto& c : tau_perm) beta.push_back(c.value());

    // Step 3(c): C2 locates the zero and answers with the encrypted
    // one-hot U. The augmentation guarantees a unique minimum, so C2 sees
    // exactly one zero — tie multiplicity is no longer in its view.
    SKNN_ASSIGN_OR_RETURN(Message u_resp,
                          ctx.Call(Op::kMinPointerBatch, std::move(beta)));
    if (u_resp.ints.size() != n) {
      return Status::ProtocolError("ExtractTopK: bad min-pointer response");
    }
    std::vector<Ciphertext> u(n);
    for (std::size_t i = 0; i < n; ++i) u[i] = Ciphertext(u_resp.ints[i]);

    // Step 3(d): V = pi^{-1}(U); record extraction via one batched SM of
    // V_i against every attribute, then column-wise homomorphic sums.
    //
    // Step 3(e) clamps every bit of the winner to 1 via SBOR of V_i — and
    // SBOR's only round trip is itself an SM of exactly the same V_i. In
    // vectorized mode both stages therefore ride ONE fused SM round
    // (operands [V x attributes | V x bits]); C2 sees the same blinded
    // products either way, so only the message count changes. Scalar mode
    // keeps the paper-literal two rounds. The clamp is skipped after the
    // last iteration (the paper loops it unconditionally; the update only
    // matters for the next SMIN_n).
    std::vector<Ciphertext> v = pi.ApplyInverse(u);
    const bool clamp = s < k;
    const bool fuse = ctx.vectorized() && clamp;
    const std::size_t sm_count = n * m + (fuse ? n * l_aug : 0);
    std::vector<Ciphertext> sm_left(sm_count), sm_right(sm_count);
    ctx.ForEach(n, [&](std::size_t i) {
      for (std::size_t j = 0; j < m; ++j) {
        sm_left[i * m + j] = v[i];
        sm_right[i * m + j] = records[i][j];
      }
      if (fuse) {
        for (std::size_t g = 0; g < l_aug; ++g) {
          sm_left[n * m + i * l_aug + g] = v[i];
          sm_right[n * m + i * l_aug + g] = bits[i][g];
        }
      }
    });
    SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> v_prime,
                          SecureMultiplyBatch(ctx, sm_left, sm_right));
    std::vector<Ciphertext> record(m);
    ctx.ForEach(m, [&](std::size_t j) {
      Ciphertext acc = v_prime[j];
      for (std::size_t i = 1; i < n; ++i) {
        acc = pk.Add(acc, v_prime[i * m + j]);
      }
      record[j] = std::move(acc);
    });
    out.records.push_back(std::move(record));
    if (keep_winner_bits) out.winner_bits.push_back(std::move(dmin_bits));
    bd.extract_seconds += phase.ElapsedSeconds();

    if (!clamp) break;
    phase.Reset();
    if (fuse) {
      // Finish the SBOR locally from the fused products:
      // v OR bit = v + bit - v*bit.
      ctx.ForEach(n, [&](std::size_t i) {
        for (std::size_t g = 0; g < l_aug; ++g) {
          bits[i][g] = pk.Sub(pk.Add(v[i], bits[i][g]),
                              v_prime[n * m + i * l_aug + g]);
        }
      });
    } else {
      std::vector<Ciphertext> or_left(n * l_aug), or_right(n * l_aug);
      ctx.ForEach(n, [&](std::size_t i) {
        for (std::size_t g = 0; g < l_aug; ++g) {
          or_left[i * l_aug + g] = v[i];
          or_right[i * l_aug + g] = bits[i][g];
        }
      });
      SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> ored,
                            SecureBitOrBatch(ctx, or_left, or_right));
      ctx.ForEach(n, [&](std::size_t i) {
        for (std::size_t g = 0; g < l_aug; ++g) {
          bits[i][g] = ored[i * l_aug + g];
        }
      });
    }
    bd.update_seconds += phase.ElapsedSeconds();
  }
  return out;
}

Result<CloudQueryOutput> RunSkNNm(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k, SkNNmBreakdown* breakdown,
                                  const SkNNmOptions& options) {
  const std::size_t n = db.num_records();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("SkNN_m: k must be in [1, n]");
  }
  if (enc_query.size() != db.num_attributes()) {
    return Status::InvalidArgument("SkNN_m: query dimension mismatch");
  }
  if (db.distance_bits == 0) {
    return Status::InvalidArgument("SkNN_m: database lacks distance_bits");
  }
  SkNNmBreakdown local_breakdown;
  SkNNmBreakdown& bd = breakdown != nullptr ? *breakdown : local_breakdown;
  bd = SkNNmBreakdown{};

  SKNN_ASSIGN_OR_RETURN(
      std::vector<EncryptedBits> bits,
      PrepareDistanceBits(ctx, db.records, enc_query, db.distance_bits,
                          /*global_indices=*/nullptr, n, options.farthest,
                          options.verify_sbd, &bd));
  SKNN_ASSIGN_OR_RETURN(TopKExtraction top,
                        ExtractTopK(ctx, db.records, bits, k,
                                    /*keep_winner_bits=*/false, &bd));

  // Steps 4-6 (as in Algorithm 5): mask and ship to Bob.
  Stopwatch phase;
  SKNN_ASSIGN_OR_RETURN(CloudQueryOutput out,
                        MaskAndShipToBob(ctx, top.records));
  bd.finalize_seconds = phase.ElapsedSeconds();
  return out;
}

}  // namespace sknn
