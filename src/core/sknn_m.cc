#include "core/sknn_m.h"

#include "common/stopwatch.h"
#include "proto/permutation.h"
#include "proto/sbor.h"
#include "proto/sm.h"
#include "proto/smax.h"
#include "proto/smin.h"
#include "proto/ssed.h"

namespace sknn {

Result<CloudQueryOutput> RunSkNNm(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k, SkNNmBreakdown* breakdown,
                                  const SkNNmOptions& options) {
  const std::size_t n = db.num_records();
  const std::size_t m = db.num_attributes();
  const unsigned l = db.distance_bits;
  if (k == 0 || k > n) {
    return Status::InvalidArgument("SkNN_m: k must be in [1, n]");
  }
  if (enc_query.size() != m) {
    return Status::InvalidArgument("SkNN_m: query dimension mismatch");
  }
  if (l == 0) {
    return Status::InvalidArgument("SkNN_m: database lacks distance_bits");
  }
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& big_n = pk.n();
  SkNNmBreakdown local_breakdown;
  SkNNmBreakdown& bd = breakdown != nullptr ? *breakdown : local_breakdown;
  bd = SkNNmBreakdown{};
  Stopwatch phase;

  // Step 2: Epk(d_i) by SSED, then [d_i] by SBD.
  SKNN_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> dist,
      SecureSquaredDistanceBatch(ctx, db.records, enc_query));
  bd.ssed_seconds = phase.ElapsedSeconds();
  phase.Reset();

  SbdOptions sbd_opts;
  sbd_opts.l = l;
  sbd_opts.verify = options.verify_sbd;
  SKNN_ASSIGN_OR_RETURN(std::vector<EncryptedBits> bits,
                        BitDecomposeBatch(ctx, dist, sbd_opts));
  if (options.farthest) {
    // Work on complements: the minimum of NOT d is the maximum of d, and
    // every downstream step (SMIN_n, pointer, clamp) applies unchanged.
    ctx.ForEach(n, [&](std::size_t i) {
      bits[i] = ComplementBits(pk, bits[i]);
      dist[i] = ComposeFromBits(pk, bits[i]);
    });
  }
  bd.sbd_seconds = phase.ElapsedSeconds();

  std::vector<std::vector<Ciphertext>> result_records;
  result_records.reserve(k);

  for (unsigned s = 1; s <= k; ++s) {
    // Step 3(a): [d_min] over the current (possibly clamped) bit vectors.
    phase.Reset();
    SKNN_ASSIGN_OR_RETURN(EncryptedBits dmin_bits, SecureMinN(ctx, bits));
    bd.sminn_seconds += phase.ElapsedSeconds();

    // Step 3(b): tau_i = Epk(r_i * (d_min - d_i)), permuted. From the second
    // iteration on, Epk(d_i) must be recomposed from the updated bits.
    phase.Reset();
    Ciphertext e_dmin = ComposeFromBits(pk, dmin_bits);
    std::vector<Ciphertext> tau(n);
    ctx.ForEach(n, [&](std::size_t i) {
      Random& rng = Random::ThreadLocal();
      Ciphertext e_di = (s == 1) ? dist[i] : ComposeFromBits(pk, bits[i]);
      Ciphertext diff = pk.Sub(e_dmin, e_di);
      tau[i] = pk.MulScalar(diff, rng.NonZeroBelow(big_n));
    });
    Permutation pi = Permutation::Sample(n, Random::ThreadLocal());
    std::vector<Ciphertext> tau_perm = pi.Apply(tau);
    std::vector<BigInt> beta;
    beta.reserve(n);
    for (auto& c : tau_perm) beta.push_back(c.value());

    // Step 3(c): C2 locates a zero and answers with the encrypted one-hot U.
    SKNN_ASSIGN_OR_RETURN(Message u_resp,
                          ctx.Call(Op::kMinPointerBatch, std::move(beta)));
    if (u_resp.ints.size() != n) {
      return Status::ProtocolError("SkNN_m: bad min-pointer response");
    }
    std::vector<Ciphertext> u(n);
    for (std::size_t i = 0; i < n; ++i) u[i] = Ciphertext(u_resp.ints[i]);

    // Step 3(d): V = pi^{-1}(U); record extraction via one batched SM of
    // V_i against every attribute, then column-wise homomorphic sums.
    //
    // Step 3(e) clamps the winner's distance to 2^l - 1 via SBOR of V_i
    // into every bit of [d_i] — and SBOR's only round trip is itself an SM
    // of exactly the same V_i. In vectorized mode both stages therefore
    // ride ONE fused SM round (operands [V x attributes | V x bits]); C2
    // sees the same blinded products either way, so only the message count
    // changes. Scalar mode keeps the paper-literal two rounds. The clamp is
    // skipped after the last iteration (the paper loops it unconditionally;
    // the update only matters for the next SMIN_n).
    std::vector<Ciphertext> v = pi.ApplyInverse(u);
    const bool clamp = s < k;
    const bool fuse = ctx.vectorized() && clamp;
    const std::size_t sm_count = n * m + (fuse ? n * l : 0);
    std::vector<Ciphertext> sm_left(sm_count), sm_right(sm_count);
    ctx.ForEach(n, [&](std::size_t i) {
      for (std::size_t j = 0; j < m; ++j) {
        sm_left[i * m + j] = v[i];
        sm_right[i * m + j] = db.records[i][j];
      }
      if (fuse) {
        for (unsigned g = 0; g < l; ++g) {
          sm_left[n * m + i * l + g] = v[i];
          sm_right[n * m + i * l + g] = bits[i][g];
        }
      }
    });
    SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> v_prime,
                          SecureMultiplyBatch(ctx, sm_left, sm_right));
    std::vector<Ciphertext> record(m);
    ctx.ForEach(m, [&](std::size_t j) {
      Ciphertext acc = v_prime[j];
      for (std::size_t i = 1; i < n; ++i) {
        acc = pk.Add(acc, v_prime[i * m + j]);
      }
      record[j] = std::move(acc);
    });
    result_records.push_back(std::move(record));
    bd.extract_seconds += phase.ElapsedSeconds();

    if (!clamp) break;
    phase.Reset();
    if (fuse) {
      // Finish the SBOR locally from the fused products:
      // v OR bit = v + bit - v*bit.
      ctx.ForEach(n, [&](std::size_t i) {
        for (unsigned g = 0; g < l; ++g) {
          bits[i][g] = pk.Sub(pk.Add(v[i], bits[i][g]),
                              v_prime[n * m + i * l + g]);
        }
      });
    } else {
      std::vector<Ciphertext> or_left(n * l), or_right(n * l);
      ctx.ForEach(n, [&](std::size_t i) {
        for (unsigned g = 0; g < l; ++g) {
          or_left[i * l + g] = v[i];
          or_right[i * l + g] = bits[i][g];
        }
      });
      SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> ored,
                            SecureBitOrBatch(ctx, or_left, or_right));
      ctx.ForEach(n, [&](std::size_t i) {
        for (unsigned g = 0; g < l; ++g) {
          bits[i][g] = ored[i * l + g];
        }
      });
    }
    bd.update_seconds += phase.ElapsedSeconds();
  }

  // Steps 4-6 (as in Algorithm 5): mask and ship to Bob.
  phase.Reset();
  SKNN_ASSIGN_OR_RETURN(CloudQueryOutput out,
                        MaskAndShipToBob(ctx, result_records));
  bd.finalize_seconds = phase.ElapsedSeconds();
  return out;
}

}  // namespace sknn
