#include "core/db_io.h"

#include <cstring>
#include <fstream>

namespace sknn {
namespace {

constexpr char kMagic[8] = {'S', 'K', 'N', 'N', 'D', 'B', '0', '1'};
constexpr char kManifestMagic[8] = {'S', 'K', 'N', 'N', 'S', 'H', '0', '1'};
constexpr char kClusterMagic[8] = {'S', 'K', 'N', 'N', 'C', 'L', '0', '1'};

void PutU32(std::ofstream& out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.write(bytes, 4);
}

bool GetU32(std::ifstream& in, uint32_t* v) {
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return true;
}

// Reads and checks an 8-byte magic whose last two characters are the format
// revision. Three distinct outcomes for the caller's error message: OK,
// "right family, unknown revision" (version skew — an artifact from a
// newer/older build must be re-exported, not half-parsed), and "not ours".
enum class MagicCheck { kOk, kVersionSkew, kForeign };

MagicCheck CheckMagic(std::ifstream& in, const char (&expected)[8]) {
  char magic[8];
  if (!in.read(magic, sizeof(magic))) return MagicCheck::kForeign;
  if (std::memcmp(magic, expected, sizeof(magic)) == 0) return MagicCheck::kOk;
  if (std::memcmp(magic, expected, 6) == 0) return MagicCheck::kVersionSkew;
  return MagicCheck::kForeign;
}

}  // namespace

Status WriteEncryptedDatabase(const std::string& path,
                              const EncryptedDatabase& db) {
  if (db.records.empty() || db.records[0].empty()) {
    return Status::InvalidArgument("WriteEncryptedDatabase: empty database");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("WriteEncryptedDatabase: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  PutU32(out, static_cast<uint32_t>(db.num_records()));
  PutU32(out, static_cast<uint32_t>(db.num_attributes()));
  PutU32(out, db.distance_bits);
  for (const auto& row : db.records) {
    if (row.size() != db.num_attributes()) {
      return Status::InvalidArgument("WriteEncryptedDatabase: ragged rows");
    }
    for (const auto& ct : row) {
      std::vector<uint8_t> bytes = ct.value().ToBytes();
      PutU32(out, static_cast<uint32_t>(bytes.size()));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
  }
  if (!out.good()) {
    return Status::IoError("WriteEncryptedDatabase: write failure");
  }
  return Status::OK();
}

Result<EncryptedDatabase> ReadEncryptedDatabase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("ReadEncryptedDatabase: cannot open " + path);
  }
  switch (CheckMagic(in, kMagic)) {
    case MagicCheck::kOk:
      break;
    case MagicCheck::kVersionSkew:
      return Status::InvalidArgument(
          "ReadEncryptedDatabase: " + path +
          " is an sknn database of an unsupported format revision (this "
          "build reads SKNNDB01); re-export it with this build's "
          "sknn_encrypt");
    case MagicCheck::kForeign:
      return Status::InvalidArgument(
          "ReadEncryptedDatabase: bad magic (not an sknn database)");
  }
  uint32_t n = 0, m = 0, l = 0;
  if (!GetU32(in, &n) || !GetU32(in, &m) || !GetU32(in, &l) || n == 0 ||
      m == 0 || l == 0) {
    return Status::InvalidArgument("ReadEncryptedDatabase: bad geometry");
  }
  EncryptedDatabase db;
  db.distance_bits = l;
  db.records.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<Ciphertext> row;
    row.reserve(m);
    for (uint32_t j = 0; j < m; ++j) {
      uint32_t len = 0;
      if (!GetU32(in, &len)) {
        return Status::InvalidArgument(
            "ReadEncryptedDatabase: truncated file");
      }
      std::vector<uint8_t> bytes(len);
      if (len > 0 &&
          !in.read(reinterpret_cast<char*>(bytes.data()), len)) {
        return Status::InvalidArgument(
            "ReadEncryptedDatabase: truncated ciphertext");
      }
      row.emplace_back(BigInt::FromBytes(bytes));
    }
    db.records.push_back(std::move(row));
  }
  // Reject trailing garbage.
  char extra;
  if (in.read(&extra, 1)) {
    return Status::InvalidArgument("ReadEncryptedDatabase: trailing bytes");
  }
  return db;
}

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest) {
  // Round-trip through the validator so a malformed manifest can never be
  // persisted in the first place.
  SKNN_ASSIGN_OR_RETURN(ShardManifest checked,
                        MakeShardManifest(manifest.total_records,
                                          manifest.num_shards,
                                          manifest.scheme));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("WriteShardManifest: cannot open " + path);
  }
  out.write(kManifestMagic, sizeof(kManifestMagic));
  PutU32(out, static_cast<uint32_t>(checked.scheme));
  PutU32(out, static_cast<uint32_t>(checked.num_shards));
  PutU32(out, static_cast<uint32_t>(checked.total_records));
  if (!out.good()) {
    return Status::IoError("WriteShardManifest: write failure");
  }
  return Status::OK();
}

Result<ShardManifest> ReadShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("ReadShardManifest: cannot open " + path);
  }
  switch (CheckMagic(in, kManifestMagic)) {
    case MagicCheck::kOk:
      break;
    case MagicCheck::kVersionSkew:
      return Status::InvalidArgument(
          "ReadShardManifest: " + path +
          " is a shard manifest of an unsupported format revision (this "
          "build reads SKNNSH01); re-export it with this build's "
          "sknn_encrypt");
    case MagicCheck::kForeign:
      return Status::InvalidArgument(
          "ReadShardManifest: bad magic (not a shard manifest)");
  }
  uint32_t scheme = 0, num_shards = 0, total_records = 0;
  if (!GetU32(in, &scheme) || !GetU32(in, &num_shards) ||
      !GetU32(in, &total_records)) {
    return Status::InvalidArgument("ReadShardManifest: truncated file");
  }
  char extra;
  if (in.read(&extra, 1)) {
    return Status::InvalidArgument("ReadShardManifest: trailing bytes");
  }
  if (scheme > static_cast<uint32_t>(ShardScheme::kByCluster)) {
    return Status::InvalidArgument("ReadShardManifest: unknown scheme");
  }
  return MakeShardManifest(total_records, num_shards,
                           static_cast<ShardScheme>(scheme));
}

Status ValidateManifestForDatabase(const ShardManifest& manifest,
                                   const EncryptedDatabase& db) {
  if (manifest.total_records != db.num_records()) {
    return Status::InvalidArgument(
        "shard manifest describes " +
        std::to_string(manifest.total_records) +
        " records but the database holds " +
        std::to_string(db.num_records()) +
        " — manifest and database are not from the same export");
  }
  return Status::OK();
}

namespace {

// The db-independent half of ValidateClusterManifestForDatabase: internal
// consistency of counts, assignment range, and centroid geometry.
Status CheckClusterManifestShape(const ClusterManifest& manifest) {
  if (manifest.num_clusters == 0) {
    return Status::InvalidArgument("cluster manifest: zero clusters");
  }
  if (manifest.total_records == 0 || manifest.num_attributes == 0) {
    return Status::InvalidArgument("cluster manifest: empty geometry");
  }
  if (manifest.assignment.size() != manifest.total_records) {
    return Status::InvalidArgument(
        "cluster manifest: assignment covers " +
        std::to_string(manifest.assignment.size()) + " of " +
        std::to_string(manifest.total_records) + " records");
  }
  for (uint32_t c : manifest.assignment) {
    if (c >= manifest.num_clusters) {
      return Status::InvalidArgument(
          "cluster manifest: assignment names cluster " + std::to_string(c) +
          " of " + std::to_string(manifest.num_clusters));
    }
  }
  if (manifest.centroids.size() != manifest.num_clusters) {
    return Status::InvalidArgument(
        "cluster manifest: " + std::to_string(manifest.centroids.size()) +
        " centroid rows for " + std::to_string(manifest.num_clusters) +
        " clusters");
  }
  for (const auto& row : manifest.centroids) {
    if (row.size() != manifest.num_attributes) {
      return Status::InvalidArgument("cluster manifest: ragged centroids");
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteClusterManifest(const std::string& path,
                            const ClusterManifest& manifest) {
  if (Status shape = CheckClusterManifestShape(manifest); !shape.ok()) {
    return shape;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("WriteClusterManifest: cannot open " + path);
  }
  out.write(kClusterMagic, sizeof(kClusterMagic));
  PutU32(out, manifest.num_clusters);
  PutU32(out, static_cast<uint32_t>(manifest.num_attributes));
  PutU32(out, static_cast<uint32_t>(manifest.total_records));
  for (uint32_t c : manifest.assignment) PutU32(out, c);
  for (const auto& row : manifest.centroids) {
    for (const auto& ct : row) {
      std::vector<uint8_t> bytes = ct.value().ToBytes();
      PutU32(out, static_cast<uint32_t>(bytes.size()));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
  }
  if (!out.good()) {
    return Status::IoError("WriteClusterManifest: write failure");
  }
  return Status::OK();
}

Result<ClusterManifest> ReadClusterManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("ReadClusterManifest: cannot open " + path);
  }
  switch (CheckMagic(in, kClusterMagic)) {
    case MagicCheck::kOk:
      break;
    case MagicCheck::kVersionSkew:
      return Status::InvalidArgument(
          "ReadClusterManifest: " + path +
          " is a cluster manifest of an unsupported format revision (this "
          "build reads SKNNCL01); re-export it with this build's "
          "sknn_encrypt");
    case MagicCheck::kForeign:
      return Status::InvalidArgument(
          "ReadClusterManifest: bad magic (not a cluster manifest)");
  }
  uint32_t num_clusters = 0, m = 0, n = 0;
  if (!GetU32(in, &num_clusters) || !GetU32(in, &m) || !GetU32(in, &n) ||
      num_clusters == 0 || m == 0 || n == 0) {
    return Status::InvalidArgument("ReadClusterManifest: bad geometry");
  }
  if (num_clusters > n) {
    return Status::InvalidArgument(
        "ReadClusterManifest: more clusters than records");
  }
  ClusterManifest manifest;
  manifest.num_clusters = num_clusters;
  manifest.num_attributes = m;
  manifest.total_records = n;
  manifest.assignment.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    if (!GetU32(in, &c)) {
      return Status::InvalidArgument(
          "ReadClusterManifest: truncated assignment");
    }
    manifest.assignment.push_back(c);
  }
  manifest.centroids.reserve(num_clusters);
  for (uint32_t c = 0; c < num_clusters; ++c) {
    std::vector<Ciphertext> row;
    row.reserve(m);
    for (uint32_t j = 0; j < m; ++j) {
      uint32_t len = 0;
      if (!GetU32(in, &len)) {
        return Status::InvalidArgument(
            "ReadClusterManifest: truncated centroids");
      }
      std::vector<uint8_t> bytes(len);
      if (len > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), len)) {
        return Status::InvalidArgument(
            "ReadClusterManifest: truncated centroid ciphertext");
      }
      row.emplace_back(BigInt::FromBytes(bytes));
    }
    manifest.centroids.push_back(std::move(row));
  }
  char extra;
  if (in.read(&extra, 1)) {
    return Status::InvalidArgument("ReadClusterManifest: trailing bytes");
  }
  if (Status shape = CheckClusterManifestShape(manifest); !shape.ok()) {
    return shape;
  }
  return manifest;
}

Status ValidateCiphertexts(const EncryptedDatabase& db,
                           const PaillierPublicKey& pk) {
  for (std::size_t i = 0; i < db.records.size(); ++i) {
    for (std::size_t j = 0; j < db.records[i].size(); ++j) {
      if (!pk.IsValidCiphertext(db.records[i][j])) {
        return Status::CryptoError(
            "ValidateCiphertexts: invalid ciphertext at record " +
            std::to_string(i) + ", attribute " + std::to_string(j));
      }
    }
  }
  return Status::OK();
}

}  // namespace sknn
