#include "core/sknn_b.h"

#include "proto/ssed.h"

namespace sknn {
namespace {

void AppendU32(std::vector<uint8_t>& aux, uint32_t v) {
  for (int i = 0; i < 4; ++i) aux.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

Result<CloudQueryOutput> MaskAndShipToBob(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& chosen) {
  const PaillierPublicKey& pk = ctx.pk();
  const std::size_t m = chosen.empty() ? 0 : chosen[0].size();
  const std::size_t total = chosen.size() * m;
  CloudQueryOutput out;
  out.masks_for_bob.resize(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    out.masks_for_bob[idx] = Random::ThreadLocal().Below(pk.n());
  }
  // Mask encryptions ride the batched API (randomizer pool + fan-out).
  std::vector<Ciphertext> enc_masks =
      pk.EncryptMany(out.masks_for_bob, ctx.pool());
  std::vector<BigInt> gamma(total);
  ctx.ForEach(total, [&](std::size_t idx) {
    const Ciphertext& attr = chosen[idx / m][idx % m];
    gamma[idx] = pk.Add(attr, enc_masks[idx]).value();
  });
  SKNN_ASSIGN_OR_RETURN(Message resp,
                        ctx.Call(Op::kMaskedDecryptToBob, std::move(gamma)));
  (void)resp;  // empty ack
  return out;
}

Result<std::vector<uint32_t>> SecureTopKIndices(
    ProtoContext& ctx, const std::vector<Ciphertext>& dists, unsigned k) {
  const std::size_t n = dists.size();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("SecureTopKIndices: k must be in [1, n]");
  }
  std::vector<BigInt> dist_values;
  dist_values.reserve(n);
  for (const auto& c : dists) dist_values.push_back(c.value());
  std::vector<uint8_t> aux;
  AppendU32(aux, k);
  SKNN_ASSIGN_OR_RETURN(
      Message resp,
      ctx.Call(Op::kTopKIndices, std::move(dist_values), std::move(aux)));
  if (resp.aux.size() != std::size_t{k} * 4) {
    return Status::ProtocolError("SecureTopKIndices: bad top-k response");
  }
  std::vector<uint32_t> indices;
  indices.reserve(k);
  for (unsigned j = 0; j < k; ++j) {
    uint32_t idx = resp.AuxU32At(std::size_t{j} * 4);
    if (idx >= n) {
      return Status::ProtocolError("SecureTopKIndices: index out of range");
    }
    indices.push_back(idx);
  }
  return indices;
}

Result<CloudQueryOutput> RunSkNNb(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k) {
  const std::size_t n = db.num_records();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("SkNN_b: k must be in [1, n]");
  }
  if (enc_query.size() != db.num_attributes()) {
    return Status::InvalidArgument("SkNN_b: query dimension mismatch");
  }

  // Step 2: Epk(d_i) = SSED(Epk(Q), Epk(t_i)) for all records.
  SKNN_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> dist,
      SecureSquaredDistanceBatch(ctx, db.records, enc_query));

  // Step 3: C2 decrypts the distances and returns the top-k index list
  // delta. (This is exactly the leak the basic protocol accepts.)
  SKNN_ASSIGN_OR_RETURN(std::vector<uint32_t> delta,
                        SecureTopKIndices(ctx, dist, k));

  // Steps 4-5: randomize the chosen records and ship them to Bob.
  std::vector<std::vector<Ciphertext>> chosen;
  chosen.reserve(k);
  for (uint32_t idx : delta) chosen.push_back(db.records[idx]);
  return MaskAndShipToBob(ctx, chosen);
}

}  // namespace sknn
