// Alice: generates the key pair, encrypts her table attribute-wise, and
// outsources Epk(T) to C1 and sk to C2 (Section 4). After outsourcing she
// takes part in no further computation.
#ifndef SKNN_CORE_DATA_OWNER_H_
#define SKNN_CORE_DATA_OWNER_H_

#include <utility>

#include "common/thread_pool.h"
#include "core/types.h"
#include "crypto/paillier.h"

namespace sknn {

class DataOwner {
 public:
  /// \brief Creates Alice with a fresh Paillier key pair of `key_bits`.
  static Result<DataOwner> Create(unsigned key_bits);

  /// \brief Attribute-wise encryption of the table. All values must lie in
  /// [0, 2^attr_bits); `distance_bits` of the result is derived so that any
  /// squared distance between table rows / queries fits (l of the paper).
  /// Encryption fans out over `pool` when given (setup is a one-time cost,
  /// but benchmark grids re-run it often).
  Result<EncryptedDatabase> EncryptDatabase(const PlainTable& table,
                                            unsigned attr_bits,
                                            ThreadPool* pool = nullptr) const;

  const PaillierPublicKey& public_key() const { return keys_.pk; }

  /// \brief The key hand-off to C2 — this is the trust split of the
  /// federated-cloud model: C2 gets sk but never the encrypted database.
  const PaillierSecretKey& secret_key_for_c2() const { return keys_.sk; }

  /// \brief Minimal l such that m * (2^attr_bits - 1)^2 < 2^l.
  static unsigned RequiredDistanceBits(std::size_t num_attributes,
                                       unsigned attr_bits);

  /// \brief Inverse of RequiredDistanceBits: the largest attribute width b
  /// whose worst-case squared distance still fits in `distance_bits`. When
  /// the database came from EncryptDatabase this recovers Alice's attr_bits
  /// exactly; query validation holds records to this bound so the
  /// protocols' distance-domain guarantee survives any query.
  static unsigned ImpliedAttrBits(std::size_t num_attributes,
                                  unsigned distance_bits);

 private:
  explicit DataOwner(PaillierKeyPair keys) : keys_(std::move(keys)) {}

  PaillierKeyPair keys_;
};

}  // namespace sknn

#endif  // SKNN_CORE_DATA_OWNER_H_
