#include "common/sha256.h"

#include <algorithm>
#include <cstring>

namespace sknn {

namespace {

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t RotR(uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t{block[4 * i]} << 24) | (uint32_t{block[4 * i + 1]} << 16) |
           (uint32_t{block[4 * i + 2]} << 8) | uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const void* data, std::size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  total_len_ += len;
  while (len > 0) {
    if (buffered_ == 0 && len >= 64) {
      // Full blocks straight from the caller's buffer, no copy.
      Compress(bytes);
      bytes += 64;
      len -= 64;
      continue;
    }
    const std::size_t take = std::min(len, std::size_t{64} - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    len -= take;
    if (buffered_ == 64) {
      Compress(buffer_.data());
      buffered_ = 0;
    }
  }
}

std::array<uint8_t, Sha256::kDigestLen> Sha256::Finish() {
  const uint64_t bit_len = total_len_ * 8;
  const uint8_t one = 0x80;
  Update(&one, 1);
  const uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Update() would re-count these 8 bytes into total_len_, but bit_len is
  // already latched above, so the digest is correct.
  Update(len_bytes, 8);
  std::array<uint8_t, kDigestLen> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

std::array<uint8_t, Sha256::kDigestLen> Sha256::Digest(const void* data,
                                                       std::size_t len) {
  Sha256 hasher;
  hasher.Update(data, len);
  return hasher.Finish();
}

std::string Sha256::HexDigest(const std::string& text) {
  const auto digest = Digest(text.data(), text.size());
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(2 * kDigestLen);
  for (uint8_t byte : digest) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xf]);
  }
  return hex;
}

}  // namespace sknn
