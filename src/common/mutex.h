// Annotated mutex / scoped-lock / condition-variable wrappers — the ONLY
// lock vocabulary of this codebase. scripts/lint.sh rejects any use of raw
// std::mutex / std::lock_guard / std::unique_lock / std::condition_variable
// outside this header, and the clang CI leg builds with
// -Werror=thread-safety, so the GUARDED_BY contracts these types anchor are
// machine-checked on every push.
//
// Usage pattern (see docs/CONCURRENCY.md for the full inventory):
//
//   class Pool {
//    public:
//     void Push(Item item) {
//       MutexLock lock(&mutex_);
//       items_.push_back(std::move(item));   // checked: mutex_ is held
//       cv_.NotifyOne();
//     }
//     Item Pop() {
//       MutexLock lock(&mutex_);
//       while (items_.empty()) cv_.Wait(mutex_);  // explicit wait loop
//       ...
//     }
//    private:
//     Mutex mutex_;
//     CondVar cv_;
//     std::vector<Item> items_ GUARDED_BY(mutex_);
//   };
//
// Condition waits are written as explicit `while (!pred) cv.Wait(mu);`
// loops, NOT predicate lambdas: the analysis treats a lambda body as a
// separate unannotated function, so a `cv.wait(lock, [&]{ ... })` predicate
// reading guarded state would defeat the check the wrappers exist for.
#ifndef SKNN_COMMON_MUTEX_H_
#define SKNN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace sknn {

class CondVar;

/// \brief An exclusive lock (std::mutex) carrying the `capability`
/// annotation, so fields can be declared GUARDED_BY it and functions
/// REQUIRES it. Prefer MutexLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII holder: acquires the mutex for the enclosing scope. The
/// analysis tracks the capability from construction to scope exit.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable working on sknn::Mutex. Wait atomically
/// releases the mutex and reacquires it before returning, so from the
/// analysis' point of view the caller holds the lock throughout — which is
/// exactly the invariant a correct wait loop provides.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified; spurious wakeups possible — always call
  /// from a `while (!pred)` loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  /// \brief Wait with a deadline; returns std::cv_status::timeout when the
  /// deadline passed without a notification.
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  /// \brief Wait with a timeout relative to now.
  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_MUTEX_H_
