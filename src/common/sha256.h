// Minimal SHA-256 (FIPS 180-4), self-contained — no OpenSSL dependency.
//
// Two consumers, neither of which needs a general-purpose hash API:
//  - serve/qos/api_key_auth.h stores salted digests of API keys so the keys
//    file on disk never holds a raw credential, and
//  - serve/qos/result_cache.h fingerprints (table, query, knobs) tuples into
//    fixed-size cache keys.
// Both want a one-shot "bytes in, 32 bytes out" function; the streaming
// Update/Finish shape exists so callers can hash several fields without
// concatenating them into a temporary buffer first.
#ifndef SKNN_COMMON_SHA256_H_
#define SKNN_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sknn {

/// \brief Streaming SHA-256. Update() any number of times, then Finish()
/// exactly once; the object is single-use.
class Sha256 {
 public:
  static constexpr std::size_t kDigestLen = 32;

  Sha256();

  void Update(const void* data, std::size_t len);
  void Update(const std::string& text) { Update(text.data(), text.size()); }

  /// \brief Finalizes padding and returns the 32-byte digest.
  std::array<uint8_t, kDigestLen> Finish();

  /// \brief One-shot convenience: digest of a single buffer.
  static std::array<uint8_t, kDigestLen> Digest(const void* data,
                                                std::size_t len);

  /// \brief One-shot digest rendered as 64 lowercase hex characters — the
  /// format the API-keys file stores.
  static std::string HexDigest(const std::string& text);

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace sknn

#endif  // SKNN_COMMON_SHA256_H_
