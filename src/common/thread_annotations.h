// Clang Thread Safety Analysis attribute macros — the compiler-checked
// locking contract of the concurrency surface (common/mutex.h and every
// class that declares GUARDED_BY fields). Under clang the CI builds with
// -Wthread-safety -Werror=thread-safety, so an unguarded access to an
// annotated field, a missing REQUIRES on a helper, or an unbalanced
// ACQUIRE/RELEASE is a build break. Under gcc (and any compiler without the
// attributes) every macro expands to nothing.
//
// Vocabulary (see docs/CONCURRENCY.md for the repo-wide lock inventory):
//   GUARDED_BY(mu)    — field may only be read/written with `mu` held
//   PT_GUARDED_BY(mu) — the pointee of a pointer field is guarded by `mu`
//   REQUIRES(mu)      — caller must hold `mu` before calling
//   EXCLUDES(mu)      — caller must NOT hold `mu` (the function locks it)
//   ACQUIRE / RELEASE — the function takes / drops the named capability
//   CAPABILITY        — the class IS a lock (sknn::Mutex)
//   SCOPED_CAPABILITY — RAII lock holder (sknn::MutexLock)
//
// This is the standard macro set of Clang's thread-safety documentation
// (the abseil idiom); the spellings LOCKABLE / SCOPED_LOCKABLE are provided
// as aliases for the capability forms.
#ifndef SKNN_COMMON_THREAD_ANNOTATIONS_H_
#define SKNN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define SKNN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SKNN_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

#define CAPABILITY(x) SKNN_THREAD_ANNOTATION__(capability(x))
#define LOCKABLE CAPABILITY("mutex")

#define SCOPED_CAPABILITY SKNN_THREAD_ANNOTATION__(scoped_lockable)
#define SCOPED_LOCKABLE SCOPED_CAPABILITY

#define GUARDED_BY(x) SKNN_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SKNN_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  SKNN_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SKNN_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  SKNN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SKNN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) SKNN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SKNN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) SKNN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SKNN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SKNN_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  SKNN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SKNN_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) SKNN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SKNN_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SKNN_THREAD_ANNOTATION__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) SKNN_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  SKNN_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SKNN_COMMON_THREAD_ANNOTATIONS_H_
