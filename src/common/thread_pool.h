// Fixed-size thread pool with a ParallelFor convenience, used to reproduce
// the paper's parallel SkNN variant (Section 5.3, Figure 3): operations on
// data records are independent, so SSED/SBD/SM fan out across workers.
#ifndef SKNN_COMMON_THREAD_POOL_H_
#define SKNN_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sknn {

class ThreadPool {
 public:
  /// \brief Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Runs fn(i) for i in [0, count) across the pool and blocks until
  /// all iterations finish. Iterations must be independent.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// \brief Number of hardware threads (>= 1).
  static std::size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  /// Written only by the constructor; joined by the destructor.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace sknn

#endif  // SKNN_COMMON_THREAD_POOL_H_
