#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/mutex.h"

namespace sknn {
namespace {

std::atomic<int> g_log_level{-1};
/// Guards no field — serializes whole messages onto std::cerr so two
/// threads' log lines cannot interleave mid-line.
Mutex g_log_mutex;

LogLevel LevelFromEnv() {
  const char* env = std::getenv("SKNN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarning;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    LogLevel from_env = LevelFromEnv();
    g_log_level.store(static_cast<int>(from_env), std::memory_order_relaxed);
    return from_env;
  }
  return static_cast<LogLevel>(v);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(&g_log_mutex);
  std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kError) {
    // Error-level messages from SKNN_CHECK indicate programmer error.
  }
}

}  // namespace internal
}  // namespace sknn
