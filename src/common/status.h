// Lightweight Status / Result<T> error-handling vocabulary, modeled after the
// Arrow/Abseil convention: fallible functions return Status (or Result<T>)
// instead of throwing. Protocol code uses SKNN_RETURN_NOT_OK to propagate.
#ifndef SKNN_COMMON_STATUS_H_
#define SKNN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sknn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kProtocolError,
  kCryptoError,
  kIoError,
  kNotFound,
  /// A bounded resource (e.g. a serving front end's in-flight admission
  /// budget) is full; the request was rejected, not failed — retrying later
  /// is expected to succeed.
  kResourceExhausted,
  /// A required peer (e.g. a shard worker of a sharded front end) is dead or
  /// unreachable: the call failed at the transport, not the protocol, layer.
  /// Retrying may succeed once the peer recovers — but unlike
  /// kResourceExhausted it is not *expected* to.
  kUnavailable,
  /// The caller's deadline elapsed before the operation completed: a peer
  /// is alive but too slow (a hung worker, an overloaded link). Retrying —
  /// ideally against a different replica — may succeed.
  kDeadlineExceeded,
  /// Authentication required or failed, or the presented credential lacks
  /// access (bad API key, exhausted per-key quota is kResourceExhausted, a
  /// revoked key is this). Retrying cannot help — fix the credential.
  kPermissionDenied,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy in the OK case (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts in debug builds; callers
/// must check ok() (or use SKNN_ASSIGN_OR_RETURN).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sknn

#define SKNN_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::sknn::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#define SKNN_CONCAT_IMPL(a, b) a##b
#define SKNN_CONCAT(a, b) SKNN_CONCAT_IMPL(a, b)

#define SKNN_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                               \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define SKNN_ASSIGN_OR_RETURN(lhs, expr) \
  SKNN_ASSIGN_OR_RETURN_IMPL(SKNN_CONCAT(_res_, __LINE__), lhs, expr)

#endif  // SKNN_COMMON_STATUS_H_
