// Wall-clock stopwatch used by the benchmark harnesses and the per-phase
// cost breakdown the paper reports (e.g. SMIN_n share of SkNN_m, Section 5.2).
#ifndef SKNN_COMMON_STOPWATCH_H_
#define SKNN_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sknn {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_STOPWATCH_H_
