#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sknn {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    MutexLock lock(&mutex_);
    tasks_.push([packaged] { (*packaged)(); });
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Dynamic work stealing over a shared counter: record-level protocol work
  // is heavyweight (modexp-dominated) so per-item dispatch overhead is noise.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futs;
  std::size_t fan_out = std::min(workers_.size(), count);
  futs.reserve(fan_out);
  for (std::size_t w = 0; w < fan_out; ++w) {
    futs.push_back(Submit([next, count, &fn] {
      for (;;) {
        std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

std::size_t ThreadPool::HardwareConcurrency() {
  std::size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace sknn
