// Minimal leveled logger. Protocol and benchmark code logs through this so
// verbosity is controlled in one place (SKNN_LOG_LEVEL env or SetLogLevel).
#ifndef SKNN_COMMON_LOGGING_H_
#define SKNN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sknn {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// \brief Current global log level (initialized from SKNN_LOG_LEVEL, default
/// Warning so tests and benches stay quiet).
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sknn

#define SKNN_LOG(level)                                               \
  if (static_cast<int>(::sknn::LogLevel::k##level) <                  \
      static_cast<int>(::sknn::GetLogLevel())) {                      \
  } else                                                              \
    ::sknn::internal::LogMessage(::sknn::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#define SKNN_CHECK(cond)                                          \
  if (cond) {                                                     \
  } else                                                          \
    ::sknn::internal::LogMessage(::sknn::LogLevel::kError,        \
                                 __FILE__, __LINE__)              \
        << "Check failed: " #cond " "

#endif  // SKNN_COMMON_LOGGING_H_
