#include "baseline/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace sknn {

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

Matrix Matrix::RandomInvertible(std::size_t n, Random& rng, double range) {
  for (;;) {
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        // Uniform on a fine grid of [-range, range].
        uint64_t raw = rng.UniformUint64(2'000'001);
        m.At(r, c) = (static_cast<double>(raw) / 1'000'000.0 - 1.0) * range;
      }
    }
    if (m.Inverse().ok()) return m;
  }
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  SKNN_CHECK(cols_ == other.rows_) << "matrix shape mismatch";
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  SKNN_CHECK(cols_ == v.size()) << "matrix/vector shape mismatch";
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += At(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("Inverse: matrix not square");
  }
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(work.At(r, col)) > std::fabs(work.At(pivot, col))) {
        pivot = r;
      }
    }
    double p = work.At(pivot, col);
    if (std::fabs(p) < 1e-9) {
      return Status::InvalidArgument("Inverse: matrix is singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
        std::swap(inv.At(pivot, c), inv.At(col, c));
      }
    }
    double inv_p = 1.0 / work.At(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      work.At(col, c) *= inv_p;
      inv.At(col, c) *= inv_p;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = work.At(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.At(r, c) -= factor * work.At(col, c);
        inv.At(r, c) -= factor * inv.At(col, c);
      }
    }
  }
  return inv;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SKNN_CHECK(a.size() == b.size()) << "dot dimension mismatch";
  double out = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) out += a[i] * b[i];
  return out;
}

}  // namespace sknn
