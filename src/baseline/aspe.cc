#include "baseline/aspe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sknn {
namespace {

AspeVector ExtendPoint(const PlainRecord& p) {
  AspeVector out(p.size() + 1);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    out[i] = static_cast<double>(p[i]);
    norm2 += out[i] * out[i];
  }
  out[p.size()] = -0.5 * norm2;
  return out;
}

}  // namespace

AspeScheme AspeScheme::Create(std::size_t num_attributes, Random& rng) {
  Matrix m = Matrix::RandomInvertible(num_attributes + 1, rng);
  Matrix m_inv = m.Inverse().value();  // invertible by construction
  return AspeScheme(std::move(m), std::move(m_inv));
}

AspeVector AspeScheme::EncryptPoint(const PlainRecord& p) const {
  SKNN_CHECK(p.size() + 1 == dims_) << "ASPE: point dimension mismatch";
  return m_.Transpose().MultiplyVector(ExtendPoint(p));
}

AspeVector AspeScheme::EncryptQuery(const PlainRecord& q, Random& rng) const {
  SKNN_CHECK(q.size() + 1 == dims_) << "ASPE: query dimension mismatch";
  // r uniform in (0, 1]: scales the preference, preserves its order.
  double r = (static_cast<double>(rng.UniformUint64(1'000'000)) + 1.0) /
             1'000'000.0;
  AspeVector q_hat(dims_);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q_hat[i] = r * static_cast<double>(q[i]);
  }
  q_hat[q.size()] = r;
  return m_inv_.MultiplyVector(q_hat);
}

std::vector<std::size_t> AspeScheme::Knn(const std::vector<AspeVector>& points,
                                         const AspeVector& query, unsigned k) {
  SKNN_CHECK(k >= 1 && k <= points.size()) << "ASPE: k out of range";
  std::vector<double> pref(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    pref[i] = Dot(points[i], query);
  }
  std::vector<std::size_t> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return pref[a] != pref[b] ? pref[a] > pref[b] : a < b;
                    });
  idx.resize(k);
  return idx;
}

Result<AspeKnownPlaintextAttack> AspeKnownPlaintextAttack::Fit(
    const std::vector<PlainRecord>& known_plain,
    const std::vector<AspeVector>& known_enc) {
  if (known_plain.empty() || known_plain.size() != known_enc.size()) {
    return Status::InvalidArgument("ASPE attack: bad training pairs");
  }
  const std::size_t d = known_plain[0].size() + 1;
  if (known_plain.size() < d) {
    return Status::InvalidArgument(
        "ASPE attack: need at least m+1 known pairs");
  }
  // Columns: P_hat (extended plaintexts), C (ciphertexts). C = M^T P_hat,
  // so (M^T)^{-1} = P_hat * C^{-1} using any d independent pairs.
  // Greedily pick d pairs whose ciphertexts are independent.
  Matrix p_hat(d, d), c(d, d);
  std::size_t used = 0;
  for (std::size_t i = 0; i < known_plain.size() && used < d; ++i) {
    AspeVector ext = ExtendPoint(known_plain[i]);
    for (std::size_t r = 0; r < d; ++r) {
      p_hat.At(r, used) = ext[r];
      c.At(r, used) = known_enc[i][r];
    }
    ++used;
    if (used == d && !c.Inverse().ok()) {
      --used;  // dependent set; drop the newest column and keep scanning
    }
  }
  if (used < d) {
    return Status::InvalidArgument(
        "ASPE attack: training pairs are linearly dependent");
  }
  SKNN_ASSIGN_OR_RETURN(Matrix c_inv, c.Inverse());
  return AspeKnownPlaintextAttack(p_hat.Multiply(c_inv));
}

PlainRecord AspeKnownPlaintextAttack::Decrypt(
    const AspeVector& enc_point) const {
  std::vector<double> ext = mt_inv_.MultiplyVector(enc_point);
  PlainRecord out(ext.size() - 1);
  for (std::size_t i = 0; i + 1 < ext.size(); ++i) {
    out[i] = static_cast<int64_t>(std::llround(ext[i]));
  }
  return out;
}

}  // namespace sknn
