// ASPE — asymmetric scalar-product-preserving encryption (Wong et al.,
// SIGMOD 2009; the paper's reference [28]).
//
// The strongest prior SkNN scheme the paper compares against in its related
// work: data points and queries are encrypted with a secret invertible
// matrix so that inner products (and hence kNN order) are preserved:
//
//   point p  -> p_hat = (p, -0.5*|p|^2),  p_enc = M^T p_hat
//   query q  -> q_hat = r * (q, 1), r > 0, q_enc = M^{-1} q_hat
//   p_enc . q_enc = r * (p.q - 0.5*|p|^2)  — monotone in -dist(p, q)^2.
//
// It is fast (no interaction, no big-number arithmetic) but NOT semantically
// secure: Section 2.1.1 notes it falls to known/chosen-plaintext attacks.
// AspeKnownPlaintextAttack implements exactly that break — with m+1 known
// (plaintext, ciphertext) pairs the secret M is recovered by linear algebra
// and every stored ciphertext decrypts. The examples/ directory demonstrates
// the attack end to end; the benchmark harness uses ASPE as the insecure
// speed baseline.
#ifndef SKNN_BASELINE_ASPE_H_
#define SKNN_BASELINE_ASPE_H_

#include <vector>

#include "baseline/linalg.h"
#include "bigint/random.h"
#include "common/status.h"
#include "core/types.h"

namespace sknn {

/// \brief An ASPE-encrypted point or query: a real vector of width m+1.
using AspeVector = std::vector<double>;

class AspeScheme {
 public:
  /// \brief Samples a secret key (random invertible (m+1)x(m+1) matrix).
  static AspeScheme Create(std::size_t num_attributes, Random& rng);

  std::size_t num_attributes() const { return dims_ - 1; }

  /// \brief Encrypts a database point: M^T * (p, -0.5|p|^2).
  AspeVector EncryptPoint(const PlainRecord& p) const;

  /// \brief Encrypts a query with fresh positive scaling r.
  AspeVector EncryptQuery(const PlainRecord& q, Random& rng) const;

  /// \brief kNN on ciphertexts alone: the k points with the LARGEST
  /// preference (inner product), i.e. the k nearest. Returns indices in
  /// decreasing-preference (= increasing-distance) order.
  static std::vector<std::size_t> Knn(const std::vector<AspeVector>& points,
                                      const AspeVector& query, unsigned k);

 private:
  AspeScheme(Matrix m, Matrix m_inv)
      : m_(std::move(m)), m_inv_(std::move(m_inv)), dims_(m_.rows()) {}

  Matrix m_;      // secret key M
  Matrix m_inv_;  // M^{-1}
  std::size_t dims_;
};

/// \brief The known-plaintext break of ASPE: given m+1 independent
/// (plaintext point, ciphertext) pairs, recovers (M^T)^{-1} and decrypts
/// arbitrary point ciphertexts.
class AspeKnownPlaintextAttack {
 public:
  /// \brief Fits the attack. Fails if the pairs are linearly dependent
  /// (supply a few extra pairs in practice).
  static Result<AspeKnownPlaintextAttack> Fit(
      const std::vector<PlainRecord>& known_plain,
      const std::vector<AspeVector>& known_enc);

  /// \brief Decrypts an ASPE point ciphertext back to its attributes
  /// (rounded to the nearest integer).
  PlainRecord Decrypt(const AspeVector& enc_point) const;

 private:
  explicit AspeKnownPlaintextAttack(Matrix mt_inv)
      : mt_inv_(std::move(mt_inv)) {}

  Matrix mt_inv_;  // (M^T)^{-1}
};

}  // namespace sknn

#endif  // SKNN_BASELINE_ASPE_H_
