#include "baseline/plaintext_knn.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace sknn {

int64_t SquaredDistance(const PlainRecord& a, const PlainRecord& b) {
  SKNN_CHECK(a.size() == b.size()) << "dimension mismatch";
  int64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    int64_t d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

std::vector<std::size_t> PlainKnnIndices(const PlainTable& table,
                                         const PlainRecord& query,
                                         unsigned k) {
  SKNN_CHECK(k >= 1 && k <= table.size()) << "k out of range";
  std::vector<int64_t> dist(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    dist[i] = SquaredDistance(table[i], query);
  }
  std::vector<std::size_t> idx(table.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return dist[a] != dist[b] ? dist[a] < dist[b] : a < b;
                    });
  idx.resize(k);
  return idx;
}

PlainTable PlainKnn(const PlainTable& table, const PlainRecord& query,
                    unsigned k) {
  PlainTable out;
  out.reserve(k);
  for (std::size_t i : PlainKnnIndices(table, query, k)) {
    out.push_back(table[i]);
  }
  return out;
}

}  // namespace sknn
