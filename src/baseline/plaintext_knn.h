// Exact plaintext kNN — the correctness oracle every secure protocol is
// tested against, and the "no security" end of the efficiency spectrum in
// the benchmark harness.
#ifndef SKNN_BASELINE_PLAINTEXT_KNN_H_
#define SKNN_BASELINE_PLAINTEXT_KNN_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sknn {

/// \brief Squared Euclidean distance between two equal-length records.
int64_t SquaredDistance(const PlainRecord& a, const PlainRecord& b);

/// \brief Indices of the k records closest to `query`, in increasing
/// distance order (ties broken by lower index).
std::vector<std::size_t> PlainKnnIndices(const PlainTable& table,
                                         const PlainRecord& query,
                                         unsigned k);

/// \brief The k closest records themselves.
PlainTable PlainKnn(const PlainTable& table, const PlainRecord& query,
                    unsigned k);

}  // namespace sknn

#endif  // SKNN_BASELINE_PLAINTEXT_KNN_H_
