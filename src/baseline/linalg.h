// Tiny dense linear algebra over double — just enough for the ASPE baseline
// (random invertible matrices, inverse, solve) and its known-plaintext
// attack. Dimensions here are m+1 (record width plus one), so O(d^3)
// Gaussian elimination is more than adequate.
#ifndef SKNN_BASELINE_LINALG_H_
#define SKNN_BASELINE_LINALG_H_

#include <cstddef>
#include <vector>

#include "bigint/random.h"
#include "common/status.h"

namespace sknn {

/// \brief Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Identity(std::size_t n);
  /// \brief Entries uniform in [-range, range]; re-sampled until well
  /// conditioned enough to invert.
  static Matrix RandomInvertible(std::size_t n, Random& rng,
                                 double range = 10.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// \brief Gauss-Jordan inverse; error if (numerically) singular.
  Result<Matrix> Inverse() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sknn

#endif  // SKNN_BASELINE_LINALG_H_
