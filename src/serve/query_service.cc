#include "serve/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"

namespace sknn {

QueryService::QueryService(TableRegistry* registry, const Options& options)
    : registry_(registry), options_(options) {
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
  if (options_.connection_workers == 0) options_.connection_workers = 1;
}

QueryService::QueryService(SknnEngine* engine, const Options& options)
    : QueryService(static_cast<TableRegistry*>(nullptr), options) {
  owned_registry_ = std::make_unique<TableRegistry>();
  Status registered = owned_registry_->Register("default", engine);
  // The fixed name cannot fail validation; a null engine would crash on the
  // first query anyway, exactly like the pre-registry service.
  (void)registered;
  registry_ = owned_registry_.get();
}

QueryService::~QueryService() { Shutdown(); }

Result<std::unique_ptr<SknnEngine>> QueryService::CreateShardedEngine(
    const PaillierPublicKey& pk, EncryptedDatabase db,
    std::unique_ptr<Endpoint> c2_link, SknnEngine::Options options,
    std::size_t shards, ShardScheme scheme,
    const std::vector<std::string>& worker_addrs) {
  if (worker_addrs.empty()) {
    options.shards = shards;
    options.shard_scheme = scheme;
    return SknnEngine::CreateWithRemoteC2(pk, std::move(db),
                                          std::move(c2_link), options);
  }
  // Replication allows MORE workers than shards (duplicates become
  // replicas); the coordinator validates full coverage either way. Fewer
  // workers than --shards cannot cover and fails fast here.
  if (shards != 0 && worker_addrs.size() < shards) {
    return Status::InvalidArgument(
        "CreateShardedEngine: --shards says " + std::to_string(shards) +
        " but only " + std::to_string(worker_addrs.size()) +
        " shard workers were given");
  }
  std::vector<std::unique_ptr<Endpoint>> links;
  links.reserve(worker_addrs.size());
  for (const std::string& addr : worker_addrs) {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon + 1 >= addr.size()) {
      return Status::InvalidArgument(
          "CreateShardedEngine: worker address '" + addr +
          "' is not host:port");
    }
    unsigned long port = 0;
    try {
      port = std::stoul(addr.substr(colon + 1));
    } catch (...) {
      port = 0;
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument(
          "CreateShardedEngine: bad port in worker address '" + addr + "'");
    }
    auto link = ConnectTcp(addr.substr(0, colon),
                           static_cast<uint16_t>(port));
    if (!link.ok()) {
      return Status::Unavailable("CreateShardedEngine: cannot reach shard "
                                 "worker at " + addr + ": " +
                                 link.status().message());
    }
    links.push_back(std::move(link).value());
  }
  // The parsed addresses double as redial targets: a worker that dies and
  // comes back on the same port is re-adopted by the coordinator's probe.
  options.shard_worker_redial_addrs = worker_addrs;
  return SknnEngine::CreateWithShardWorkers(pk, std::move(links),
                                            std::move(c2_link), options);
}

Status QueryService::Start(uint16_t port) {
  if (listener_.has_value()) {
    return Status::FailedPrecondition("QueryService: already started");
  }
  if (registry_->size() == 0) {
    return Status::FailedPrecondition("QueryService: no tables registered");
  }
  // From here the table SET is immutable (no new names); the tables
  // themselves stay hot-reloadable through kReloadTable/kDetachTable.
  registry_->Freeze();
  // The frozen set is also the admission principal set: one weighted share
  // per table (detached-but-revivable entries included), replacing the old
  // first-come single budget. With one table of weight 1 this reproduces
  // the pre-QoS behavior exactly: one share covering the whole budget.
  {
    std::vector<FairAdmission::PrincipalConfig> tables;
    for (TableRegistry::Entry* entry : registry_->snapshot_all()) {
      if (options_.cache_bytes > 0) {
        entry->cache.set_budget(options_.cache_bytes,
                                ResultCache::kDefaultMaxEntries);
      }
      table_principal_[entry] = tables.size();
      FairAdmission::PrincipalConfig config;
      config.name = "table '" + entry->name + "'";
      config.weight = entry->qos_weight;
      config.rate = entry->qos_rate;
      config.burst = entry->qos_burst;
      tables.push_back(std::move(config));
    }
    table_admission_ = std::make_unique<FairAdmission>(options_.max_in_flight,
                                                       std::move(tables));
  }
  if (auth_ != nullptr) {
    std::vector<FairAdmission::PrincipalConfig> keys;
    keys.reserve(auth_->size());
    for (std::size_t i = 0; i < auth_->size(); ++i) {
      FairAdmission::PrincipalConfig config;
      config.name = "key '" + auth_->id(i) + "'";
      config.weight = auth_->weight(i);
      keys.push_back(std::move(config));
    }
    key_admission_ = std::make_unique<FairAdmission>(options_.max_in_flight,
                                                     std::move(keys));
  }
  SKNN_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(port));
  port_ = listener.port();
  listener_.emplace(std::move(listener));
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryService::Shutdown() {
  // One caller runs the teardown; any concurrent caller blocks here until
  // it is complete. Joining the accept thread from two threads at once (the
  // old stopping_-flag fast path) is undefined behavior.
  MutexLock shutdown_lock(&shutdown_mutex_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true);
  if (listener_.has_value()) {
    listener_->Close();
    // shutdown() on the listening fd wakes a blocked accept() on Linux; a
    // throwaway connection covers platforms where it does not.
    if (auto kick = ConnectTcp("127.0.0.1", port_); kick.ok()) {
      (*kick)->Close();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<RpcServer>> sessions;
  {
    MutexLock lock(&mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->Shutdown();
  sessions.clear();  // destructors join the per-connection handlers
}

QueryService::Stats QueryService::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

ServiceStatsReply QueryService::ServiceStatsSnapshot() const {
  ServiceStatsReply reply;
  reply.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  {
    MutexLock lock(&mutex_);
    reply.connections_accepted = stats_.connections_accepted;
  }
  reply.in_flight = in_flight_.load();
  for (const TableRegistry::Entry* entry : registry_->snapshot()) {
    TableStatsEntry table;
    table.name = entry->name;
    table.completed = entry->counters.completed.load();
    table.failed = entry->counters.failed.load();
    table.rejected = entry->counters.rejected.load();
    table.in_flight = entry->counters.in_flight.load();
    // Pool effectiveness (revision 4): merged C1 + C2 counters from the
    // table's engine. For a remote C2 this rides one kFetchPoolStats
    // exchange; zeros if the table is mid-reload (no engine) or the link
    // is down.
    if (std::shared_ptr<SknnEngine> engine = entry->engine()) {
      SknnEngine::RandomizerPoolStats pool = engine->randomizer_pool_stats();
      table.c1_pool_hits = pool.c1_hits;
      table.c1_pool_misses = pool.c1_misses;
      table.c1_pool_stock = pool.c1_stock;
      table.c1_pool_capacity = pool.c1_capacity;
      table.c2_pool_hits = pool.c2_hits;
      table.c2_pool_misses = pool.c2_misses;
      table.c2_pool_stock = pool.c2_stock;
      table.c2_pool_capacity = pool.c2_capacity;
    }
    // QoS surface (revision 6): admission share and result-cache counters.
    table.weight = entry->qos_weight;
    if (table_admission_ != nullptr) {
      if (auto it = table_principal_.find(entry);
          it != table_principal_.end()) {
        table.share_limit = table_admission_->share_limit(it->second);
      }
    }
    const ResultCache::Stats cache = entry->cache.stats();
    table.cache_hits = cache.hits;
    table.cache_misses = cache.misses;
    table.cache_evictions = cache.evictions;
    table.cache_entries = cache.entries;
    table.cache_bytes = cache.bytes;
    reply.tables.push_back(std::move(table));
  }
  reply.auth_enabled = auth_ != nullptr;
  if (auth_ != nullptr) {
    for (ApiKeyAuth::KeyStats& key : auth_->Snapshot()) {
      ApiKeyStatsEntry entry;
      entry.id = std::move(key.id);
      entry.completed = key.completed;
      entry.denied = key.denied;
      entry.quota_rejected = key.quota_rejected;
      entry.quota = key.quota;
      entry.remaining = key.remaining;
      entry.weight = key.weight;
      reply.keys.push_back(std::move(entry));
    }
  }
  return reply;
}

HealthReply QueryService::HealthSnapshot() const {
  HealthReply reply;
  for (const TableRegistry::Entry* entry : registry_->snapshot()) {
    TableHealthEntry table;
    table.name = entry->name;
    // Local (unsharded or in-process-sharded) tables report an empty
    // replica list: there is nothing to fail over to.
    if (std::shared_ptr<SknnEngine> engine = entry->engine()) {
      if (const ShardCoordinator* coordinator = engine->shard_coordinator()) {
        for (const ShardCoordinator::ReplicaStatus& status :
             coordinator->ReplicaStatuses()) {
          ReplicaHealthEntry replica;
          replica.shard = static_cast<uint32_t>(status.shard);
          replica.replica = static_cast<uint32_t>(status.replica);
          replica.healthy = status.healthy;
          replica.consecutive_failures = status.consecutive_failures;
          replica.failovers = status.failovers;
          replica.last_ok_age_seconds = status.last_ok_age_seconds;
          table.replicas.push_back(replica);
        }
      }
    }
    reply.tables.push_back(std::move(table));
  }
  return reply;
}

void QueryService::set_table_loader(TableLoader loader) {
  MutexLock lock(&loader_mutex_);
  table_loader_ = std::move(loader);
}

void QueryService::set_api_key_auth(std::unique_ptr<ApiKeyAuth> auth) {
  auth_ = std::move(auth);
}

void QueryService::BroadcastTableChanged(const TableChangedNote& note) {
  const Message frame = EncodeTableChanged(note);
  MutexLock lock(&mutex_);
  for (const auto& session : sessions_) {
    if (session->Finished()) continue;
    // Best effort by design: a client that raced its disconnect simply
    // misses the note and learns from its next query's error instead.
    session->Push(frame);
  }
}

Message QueryService::HandleReloadTable(const Message& request) {
  Result<ReloadTableRequest> decoded = DecodeReloadTableRequest(request);
  if (!decoded.ok()) return EncodeQueryError(decoded.status());
  TableRegistry::Entry* entry = registry_->Find(decoded->table);
  if (entry == nullptr) {
    return EncodeQueryError(Status::NotFound(
        "QueryService: kReloadTable names unknown table '" + decoded->table +
        "' (the table set is fixed at startup; reload replaces an existing "
        "one)"));
  }
  const std::string spec =
      decoded->spec.empty() ? entry->spec() : decoded->spec;
  TableLoader loader;
  {
    MutexLock lock(&loader_mutex_);
    loader = table_loader_;
  }
  if (!loader) {
    return EncodeQueryError(Status::FailedPrecondition(
        "QueryService: this server has no table loader; kReloadTable is "
        "unavailable"));
  }
  // The build runs outside every service lock: queries keep flowing on the
  // OLD engine while the replacement is constructed, however long it takes.
  Result<std::unique_ptr<SknnEngine>> rebuilt =
      loader(decoded->table, spec);
  if (!rebuilt.ok()) return EncodeQueryError(rebuilt.status());
  if (Status swapped = registry_->ReplaceEngine(
          decoded->table, std::move(rebuilt).value(), spec);
      !swapped.ok()) {
    return EncodeQueryError(swapped);
  }
  BroadcastTableChanged({decoded->table, TableChangeKind::kReloaded});
  return EncodeAdminAck(decoded->table);
}

Message QueryService::HandleDetachTable(const Message& request) {
  Result<std::string> name = DecodeDetachTableRequest(request);
  if (!name.ok()) return EncodeQueryError(name.status());
  if (Status detached = registry_->Detach(*name); !detached.ok()) {
    return EncodeQueryError(detached);
  }
  BroadcastTableChanged({*name, TableChangeKind::kDetached});
  return EncodeAdminAck(*name);
}

std::size_t QueryService::active_sessions() const {
  MutexLock lock(&mutex_);
  std::size_t active = 0;
  for (const auto& session : sessions_) {
    if (!session->Finished()) ++active;
  }
  return active;
}

void QueryService::AcceptLoop() {
  for (;;) {
    auto endpoint = listener_->Accept();
    if (stopping_.load()) break;
    if (!endpoint.ok()) {
      // Transient accept failures (ECONNABORTED handshake resets, EMFILE
      // under a connection burst, EINTR) must not kill the front end for
      // good; pause briefly and keep accepting until Shutdown says stop.
      SKNN_LOG(Warning) << "QueryService: accept failed: "
                        << endpoint.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Reap sessions whose client already disconnected, so a long-running
    // front end does not accumulate one dead RpcServer per past client.
    // Destruction happens OUTSIDE the lock: a reaped session may still be
    // joining a pool worker that is blocked in a multi-second query, and
    // holding mutex_ across that would stall stats() and every completion
    // count with it.
    std::vector<std::unique_ptr<RpcServer>> dead;
    {
      MutexLock lock(&mutex_);
      auto finished = std::stable_partition(
          sessions_.begin(), sessions_.end(),
          [](const std::unique_ptr<RpcServer>& s) { return !s->Finished(); });
      for (auto it = finished; it != sessions_.end(); ++it) {
        dead.push_back(std::move(*it));
      }
      sessions_.erase(finished, sessions_.end());
      ++stats_.connections_accepted;
      auto session = std::make_shared<SessionState>();
      sessions_.push_back(std::make_unique<RpcServer>(
          std::move(endpoint).value(),
          [this, session](const Message& req) {
            return HandleFrame(*session, req);
          },
          options_.connection_workers));
    }
    dead.clear();
  }
}

Message QueryService::Reject(const Status& status,
                             uint64_t Stats::* counter) {
  {
    MutexLock lock(&mutex_);
    ++(stats_.*counter);
  }
  return EncodeQueryError(status);
}

Message QueryService::HandleHello(SessionState& session,
                                  const Message& request) {
  Result<HelloInfo> hello = DecodeHello(request);
  if (!hello.ok()) {
    return Reject(hello.status(), &Stats::hello_rejected);
  }
  if (hello->revision < kMinSupportedRevision ||
      hello->revision > kProtocolRevision) {
    return Reject(
        Status::FailedPrecondition(
            "QueryService: protocol revision " +
            std::to_string(hello->revision) + " unsupported; this server "
            "speaks revisions " + std::to_string(kMinSupportedRevision) +
            ".." + std::to_string(kProtocolRevision)),
        &Stats::hello_rejected);
  }
  session.hello_done.store(true, std::memory_order_release);
  HelloInfo ack;
  ack.revision = kProtocolRevision;
  ack.features = kSupportedFeatures;
  ack.num_tables = static_cast<uint32_t>(registry_->size());
  return EncodeHelloAck(ack);
}

Message QueryService::HandleAuthenticate(SessionState& session,
                                         const Message& request) {
  Result<std::string> key = DecodeAuthenticateRequest(request);
  if (!key.ok()) return Reject(key.status(), &Stats::queries_failed);
  if (auth_ == nullptr) {
    // No key registry: ack as a no-op (empty key id), so one client
    // configuration works against both an open and an auth-enabled server.
    return EncodeAuthAck("");
  }
  Result<std::size_t> index = auth_->Authenticate(*key);
  if (!index.ok()) return Reject(index.status(), &Stats::auth_rejected);
  session.key_index.store(static_cast<int64_t>(*index),
                          std::memory_order_release);
  return EncodeAuthAck(auth_->id(*index));
}

Message QueryService::HandleQuery(SessionState& session,
                                  QueryRequest decoded) {
  Result<TableRegistry::Entry*> table = registry_->Resolve(decoded.table);
  if (!table.ok()) {
    return Reject(table.status(), &Stats::queries_failed);
  }
  TableRegistry::Entry& entry = **table;
  // Pin the cache generation BEFORE the engine: ReplaceEngine swaps the
  // engine first and invalidates the cache second, so a query that read the
  // OLD engine necessarily also read a pre-invalidation generation and its
  // Insert below is refused — a reload racing this query can never plant a
  // stale cache entry (serve/qos/result_cache.h).
  const uint64_t cache_generation = entry.cache.generation();
  // Pin the engine for the whole query: a concurrent kReloadTable swaps the
  // entry to a new engine, but this query finishes on the one it resolved —
  // the old engine cannot destruct while this shared_ptr lives.
  std::shared_ptr<SknnEngine> engine = entry.engine();
  if (engine == nullptr) {
    return Reject(Status::NotFound("QueryService: table '" + entry.name +
                                   "' was detached mid-session"),
                  &Stats::queries_failed);
  }
  // Validate before admission: malformed requests must not consume slots,
  // and their errors are not load signals.
  if (Status valid = engine->ValidateRequest(decoded); !valid.ok()) {
    entry.counters.failed.fetch_add(1);
    return Reject(valid, &Stats::queries_failed);
  }
  const int64_t key_index = session.key_index.load(std::memory_order_acquire);
  const bool keyed = auth_ != nullptr && key_index >= 0;
  const std::size_t key = keyed ? static_cast<std::size_t>(key_index) : 0;

  const bool cacheable = entry.cache.enabled();
  ResultCache::Key cache_key{};
  if (cacheable) {
    cache_key = ResultCache::Fingerprint(entry.name, decoded);
    if (!decoded.no_cache) {
      if (std::optional<ResultCache::CachedResult> hit =
              entry.cache.Lookup(cache_key)) {
        // A hit is a served query: it is charged against the key's quota
        // but bypasses admission — it costs a few rerandomization modexps,
        // not a protocol run, so it must not occupy a protocol slot.
        if (keyed) {
          if (Status charged = auth_->ChargeQuery(key); !charged.ok()) {
            entry.counters.rejected.fetch_add(1);
            return Reject(charged, &Stats::queries_rejected);
          }
          auth_->NoteCompleted(key);
        }
        // The stored response rides out whole — records AND the populating
        // run's instrumentation (shard stats, breakdown), flagged by
        // cache_hit so a reader knows these numbers are that run's, not
        // this round trip's.
        QueryResponse response = std::move(hit->response);
        response.cache_hit = true;
        // Fresh randomness on every hit: the wire ciphertexts of two hits
        // on the same entry share no bytes, while decrypting identically.
        const std::vector<Ciphertext> refreshed =
            engine->public_key().RerandomizeMany(hit->encrypted);
        response.encrypted_records.reserve(refreshed.size());
        for (const Ciphertext& ct : refreshed) {
          response.encrypted_records.push_back(ct.value().ToBytes());
        }
        entry.counters.completed.fetch_add(1);
        MutexLock lock(&mutex_);
        ++stats_.queries_completed;
        return EncodeQueryResponse(response);
      }
    }
  }

  // Quota first (cheapest check that can refuse), then the table's fair
  // share, then the key's. Later rejections refund earlier charges — a
  // refused query must consume neither quota nor slots.
  if (keyed) {
    if (Status charged = auth_->ChargeQuery(key); !charged.ok()) {
      entry.counters.rejected.fetch_add(1);
      return Reject(charged, &Stats::queries_rejected);
    }
  }
  const std::size_t table_principal = table_principal_.at(&entry);
  if (Status admitted = table_admission_->TryAdmit(table_principal);
      !admitted.ok()) {
    if (keyed) {
      auth_->RefundQuery(key);
      auth_->NoteDenied(key);
    }
    entry.counters.rejected.fetch_add(1);
    return Reject(admitted, &Stats::queries_rejected);
  }
  if (keyed) {
    if (Status admitted = key_admission_->TryAdmit(key); !admitted.ok()) {
      table_admission_->Release(table_principal);
      auth_->RefundQuery(key);
      auth_->NoteDenied(key);
      entry.counters.rejected.fetch_add(1);
      return Reject(admitted, &Stats::queries_rejected);
    }
  }
  in_flight_.fetch_add(1);
  entry.counters.in_flight.fetch_add(1);

  Result<QueryResponse> response = engine->Submit(std::move(decoded)).get();
  entry.counters.in_flight.fetch_sub(1);
  in_flight_.fetch_sub(1);
  table_admission_->Release(table_principal);
  if (keyed) key_admission_->Release(key);
  if (!response.ok()) {
    // Server-side failure (the request validated): not the tenant's spend.
    if (keyed) auth_->RefundQuery(key);
    entry.counters.failed.fetch_add(1);
    return Reject(response.status(), &Stats::queries_failed);
  }
  if (keyed) auth_->NoteCompleted(key);
  entry.counters.completed.fetch_add(1);
  {
    MutexLock lock(&mutex_);
    ++stats_.queries_completed;
  }
  if (cacheable) {
    // Encrypt the result attributes under the TABLE's public key: the
    // ciphertexts ride the response (so a key-holding client can verify
    // them) and seed the cache entry future hits rerandomize from. Insert
    // is generation-checked — see the pin at the top.
    std::vector<BigInt> plain;
    plain.reserve(response->records.size() *
                  (response->records.empty() ? 0
                                             : response->records[0].size()));
    for (const PlainRecord& record : response->records) {
      for (int64_t attr : record) plain.emplace_back(attr);
    }
    ResultCache::CachedResult cached;
    cached.encrypted = engine->public_key().EncryptMany(plain);
    cached.response = *response;  // stored WITHOUT the ciphertext tail
    response->encrypted_records.reserve(cached.encrypted.size());
    for (const Ciphertext& ct : cached.encrypted) {
      response->encrypted_records.push_back(ct.value().ToBytes());
    }
    entry.cache.Insert(cache_key, std::move(cached), cache_generation);
  }
  return EncodeQueryResponse(*response);
}

Message QueryService::HandleTableInfo(const Message& request) {
  Result<std::string> name = DecodeTableInfoRequest(request);
  if (!name.ok()) return EncodeQueryError(name.status());
  Result<TableRegistry::Entry*> table = registry_->Resolve(*name);
  if (!table.ok()) return EncodeQueryError(table.status());
  std::shared_ptr<SknnEngine> engine = (*table)->engine();
  if (engine == nullptr) {
    return EncodeQueryError(Status::NotFound(
        "QueryService: table '" + (*table)->name + "' was detached"));
  }
  const SknnEngine::Info info = engine->info();
  TableInfoReply reply;
  reply.name = (*table)->name;
  reply.num_records = info.num_records;
  reply.num_attributes = static_cast<uint32_t>(info.num_attributes);
  reply.attr_bits = info.attr_bits;
  reply.k_max = info.k_max;
  reply.distance_bits = info.distance_bits;
  reply.num_shards = static_cast<uint32_t>(info.num_shards);
  reply.shard_scheme = static_cast<uint32_t>(info.shard_scheme);
  reply.remote_workers = info.remote_shard_workers;
  reply.num_clusters = info.num_clusters;
  return EncodeTableInfoReply(reply);
}

Result<Message> QueryService::HandleFrame(SessionState& session,
                                          const Message& request) {
  if (request.type == FrontendOpCode(FrontendOp::kHello)) {
    return HandleHello(session, request);
  }
  // Shape first, handshake second: garbage stays a ProtocolError whether or
  // not the session ever negotiated, so fuzzing the port teaches an
  // attacker nothing about session state.
  Result<QueryRequest> decoded = QueryRequest{};
  if (request.type == FrontendOpCode(FrontendOp::kQuery)) {
    decoded = DecodeQueryRequest(request);
    if (!decoded.ok()) {
      return Reject(decoded.status(), &Stats::queries_failed);
    }
  }
  if (!session.hello_done.load(std::memory_order_acquire)) {
    return Reject(
        Status::FailedPrecondition(
            "QueryService: session did not hello — send kHello (protocol "
            "revision " + std::to_string(kProtocolRevision) +
            ") before any other frame"),
        &Stats::hello_rejected);
  }
  // Only the DATA path is credential-gated: operators may introspect an
  // auth-enabled instance (stats, health, table listing) without a key,
  // and the admin mutations were already host-trust operations.
  if (request.type == FrontendOpCode(FrontendOp::kQuery) &&
      auth_ != nullptr &&
      session.key_index.load(std::memory_order_acquire) < 0) {
    return Reject(
        Status::PermissionDenied(
            "QueryService: this server requires an API key — send "
            "kAuthenticate after the hello (client flag --api-key)"),
        &Stats::auth_rejected);
  }
  switch (static_cast<FrontendOp>(request.type)) {
    case FrontendOp::kQuery:
      return HandleQuery(session, std::move(*decoded));
    case FrontendOp::kAuthenticate:
      return HandleAuthenticate(session, request);
    case FrontendOp::kListTables:
      return EncodeTableList(registry_->names());
    case FrontendOp::kTableInfo:
      return HandleTableInfo(request);
    case FrontendOp::kServiceStats:
      return EncodeServiceStatsReply(ServiceStatsSnapshot());
    case FrontendOp::kHealth:
      return EncodeHealthReply(HealthSnapshot());
    case FrontendOp::kReloadTable:
      return HandleReloadTable(request);
    case FrontendOp::kDetachTable:
      return HandleDetachTable(request);
    default:
      return Reject(Status::ProtocolError(
                        "QueryService: frame type " +
                        std::to_string(request.type) +
                        " is not part of the front-end contract"),
                    &Stats::queries_failed);
  }
}

}  // namespace sknn
