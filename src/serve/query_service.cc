#include "serve/query_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace sknn {

QueryService::QueryService(SknnEngine* engine, const Options& options)
    : engine_(engine), options_(options) {
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
  if (options_.connection_workers == 0) options_.connection_workers = 1;
}

QueryService::~QueryService() { Shutdown(); }

Result<std::unique_ptr<SknnEngine>> QueryService::CreateShardedEngine(
    const PaillierPublicKey& pk, EncryptedDatabase db,
    std::unique_ptr<Endpoint> c2_link, SknnEngine::Options options,
    std::size_t shards, ShardScheme scheme,
    const std::vector<std::string>& worker_addrs) {
  if (worker_addrs.empty()) {
    options.shards = shards;
    options.shard_scheme = scheme;
    return SknnEngine::CreateWithRemoteC2(pk, std::move(db),
                                          std::move(c2_link), options);
  }
  if (shards != 0 && shards != worker_addrs.size()) {
    return Status::InvalidArgument(
        "CreateShardedEngine: --shards says " + std::to_string(shards) +
        " but " + std::to_string(worker_addrs.size()) +
        " shard workers were given");
  }
  std::vector<std::unique_ptr<Endpoint>> links;
  links.reserve(worker_addrs.size());
  for (const std::string& addr : worker_addrs) {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon + 1 >= addr.size()) {
      return Status::InvalidArgument(
          "CreateShardedEngine: worker address '" + addr +
          "' is not host:port");
    }
    unsigned long port = 0;
    try {
      port = std::stoul(addr.substr(colon + 1));
    } catch (...) {
      port = 0;
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument(
          "CreateShardedEngine: bad port in worker address '" + addr + "'");
    }
    auto link = ConnectTcp(addr.substr(0, colon),
                           static_cast<uint16_t>(port));
    if (!link.ok()) {
      return Status::Unavailable("CreateShardedEngine: cannot reach shard "
                                 "worker at " + addr + ": " +
                                 link.status().message());
    }
    links.push_back(std::move(link).value());
  }
  return SknnEngine::CreateWithShardWorkers(pk, std::move(links),
                                            std::move(c2_link), options);
}

Status QueryService::Start(uint16_t port) {
  if (listener_.has_value()) {
    return Status::FailedPrecondition("QueryService: already started");
  }
  SKNN_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Bind(port));
  port_ = listener.port();
  listener_.emplace(std::move(listener));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryService::Shutdown() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listener_.has_value()) {
    listener_->Close();
    // shutdown() on the listening fd wakes a blocked accept() on Linux; a
    // throwaway connection covers platforms where it does not.
    if (auto kick = ConnectTcp("127.0.0.1", port_); kick.ok()) {
      (*kick)->Close();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<RpcServer>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->Shutdown();
  sessions.clear();  // destructors join the per-connection handlers
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t QueryService::active_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& session : sessions_) {
    if (!session->Finished()) ++active;
  }
  return active;
}

void QueryService::AcceptLoop() {
  for (;;) {
    auto endpoint = listener_->Accept();
    if (stopping_.load()) break;
    if (!endpoint.ok()) {
      // Transient accept failures (ECONNABORTED handshake resets, EMFILE
      // under a connection burst, EINTR) must not kill the front end for
      // good; pause briefly and keep accepting until Shutdown says stop.
      SKNN_LOG(Warning) << "QueryService: accept failed: "
                        << endpoint.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Reap sessions whose client already disconnected, so a long-running
    // front end does not accumulate one dead RpcServer per past client.
    // Destruction happens OUTSIDE the lock: a reaped session may still be
    // joining a pool worker that is blocked in a multi-second query, and
    // holding mutex_ across that would stall stats() and every completion
    // count with it.
    std::vector<std::unique_ptr<RpcServer>> dead;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto finished = std::stable_partition(
          sessions_.begin(), sessions_.end(),
          [](const std::unique_ptr<RpcServer>& s) { return !s->Finished(); });
      for (auto it = finished; it != sessions_.end(); ++it) {
        dead.push_back(std::move(*it));
      }
      sessions_.erase(finished, sessions_.end());
      ++stats_.connections_accepted;
      sessions_.push_back(std::make_unique<RpcServer>(
          std::move(endpoint).value(),
          [this](const Message& req) { return HandleFrame(req); },
          options_.connection_workers));
    }
    dead.clear();
  }
}

Message QueryService::Reject(const Status& status,
                             uint64_t Stats::* counter) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++(stats_.*counter);
  }
  return EncodeQueryError(status);
}

Result<Message> QueryService::HandleFrame(const Message& request) {
  Result<QueryRequest> decoded = DecodeQueryRequest(request);
  if (!decoded.ok()) {
    return Reject(decoded.status(), &Stats::queries_failed);
  }
  // Validate before admission: malformed requests must not consume slots,
  // and their errors are not load signals.
  if (Status valid = engine_->ValidateRequest(*decoded); !valid.ok()) {
    return Reject(valid, &Stats::queries_failed);
  }
  std::size_t cur = in_flight_.load();
  do {
    if (cur >= options_.max_in_flight) {
      return Reject(
          Status::ResourceExhausted(
              "QueryService: " + std::to_string(options_.max_in_flight) +
              " queries in flight; retry"),
          &Stats::queries_rejected);
    }
  } while (!in_flight_.compare_exchange_weak(cur, cur + 1));

  Result<QueryResponse> response =
      engine_->Submit(std::move(*decoded)).get();
  in_flight_.fetch_sub(1);
  if (!response.ok()) {
    return Reject(response.status(), &Stats::queries_failed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries_completed;
  }
  return EncodeQueryResponse(*response);
}

}  // namespace sknn
