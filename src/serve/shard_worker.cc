#include "serve/shard_worker.h"

#include <string>

#include "common/stopwatch.h"
#include "proto/query_meter.h"

namespace sknn {

Result<std::unique_ptr<ShardWorker>> ShardWorker::Create(
    const PaillierPublicKey& pk, const EncryptedDatabase& db,
    const ShardManifest& manifest, std::size_t shard_index,
    std::unique_ptr<Endpoint> c2_link, const Options& options) {
  if (manifest.scheme == ShardScheme::kByCluster) {
    return Status::InvalidArgument(
        "ShardWorker: a bycluster manifest does not determine record "
        "placement by itself; pass the cluster manifest (sknn_c1_shard "
        "--clusters)");
  }
  SKNN_ASSIGN_OR_RETURN(
      ShardManifest checked,
      MakeShardManifest(manifest.total_records, manifest.num_shards,
                        manifest.scheme));
  if (shard_index >= checked.num_shards) {
    return Status::InvalidArgument(
        "ShardWorker: shard index " + std::to_string(shard_index) +
        " out of range for " + std::to_string(checked.num_shards) +
        " shards");
  }
  return CreateSliced(pk, db, checked, shard_index,
                      ShardRecordIndices(checked, shard_index),
                      std::move(c2_link), options);
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Create(
    const PaillierPublicKey& pk, const EncryptedDatabase& db,
    const ClusterManifest& clusters, std::size_t shard_index,
    std::unique_ptr<Endpoint> c2_link, const Options& options) {
  if (Status valid = ValidateClusterManifestForDatabase(clusters, db);
      !valid.ok()) {
    return valid;
  }
  if (shard_index >= clusters.num_clusters) {
    return Status::InvalidArgument(
        "ShardWorker: cluster index " + std::to_string(shard_index) +
        " out of range for " + std::to_string(clusters.num_clusters) +
        " clusters");
  }
  SKNN_ASSIGN_OR_RETURN(
      ShardManifest manifest,
      MakeShardManifest(clusters.total_records, clusters.num_clusters,
                        ShardScheme::kByCluster));
  std::vector<std::size_t> indices = ClusterRecordIndices(
      clusters, static_cast<uint32_t>(shard_index));
  if (indices.empty()) {
    return Status::InvalidArgument(
        "ShardWorker: cluster " + std::to_string(shard_index) +
        " is empty (corrupted or hand-edited cluster manifest?)");
  }
  return CreateSliced(pk, db, manifest, shard_index, std::move(indices),
                      std::move(c2_link), options);
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::CreateSliced(
    const PaillierPublicKey& pk, const EncryptedDatabase& db,
    const ShardManifest& manifest, std::size_t shard_index,
    std::vector<std::size_t> global_indices,
    std::unique_ptr<Endpoint> c2_link, const Options& options) {
  if (db.num_records() != manifest.total_records) {
    return Status::InvalidArgument(
        "ShardWorker: manifest is for " +
        std::to_string(manifest.total_records) + " records, database has " +
        std::to_string(db.num_records()));
  }
  if (c2_link == nullptr) {
    return Status::InvalidArgument("ShardWorker: null C2 link");
  }
  auto worker = std::unique_ptr<ShardWorker>(new ShardWorker());
  worker->options_ = options;
  worker->pk_ = pk;
  worker->slice_.global_indices = std::move(global_indices);
  worker->slice_.db.distance_bits = db.distance_bits;
  worker->slice_.db.records.reserve(worker->slice_.global_indices.size());
  for (std::size_t gidx : worker->slice_.global_indices) {
    worker->slice_.db.records.push_back(db.records[gidx]);
  }
  worker->geometry_.shard = static_cast<uint32_t>(shard_index);
  worker->geometry_.manifest = manifest;
  worker->geometry_.num_attributes =
      static_cast<uint32_t>(db.num_attributes());
  worker->geometry_.distance_bits = db.distance_bits;
  worker->geometry_.shard_records =
      static_cast<uint32_t>(worker->slice_.db.num_records());
  worker->c2_client_ = std::make_unique<RpcClient>(std::move(c2_link));
  if (options.threads > 1) {
    worker->pool_ = std::make_unique<ThreadPool>(options.threads);
  }
  if (options.randomizer_pool) {
    worker->rand_pool_ = std::make_unique<RandomizerPool>(
        worker->pk_.n(), options.randomizer_pool_capacity);
    worker->pk_.set_randomizer_pool(worker->rand_pool_.get());
  }

  // Fail fast on a dead or mismatched C2 link instead of on the first query.
  Message ping;
  ping.type = OpCode(Op::kPing);
  SKNN_ASSIGN_OR_RETURN(Message pong,
                        worker->c2_client_->Call(std::move(ping)));
  if (pong.type != OpCode(Op::kPing)) {
    return Status::ProtocolError(
        "ShardWorker: peer did not answer ping (not a C2 server?)");
  }
  return worker;
}

Message ShardWorker::HandleShardQuery(const Message& request) {
  auto decoded = DecodeShardQuery(request);
  if (!decoded.ok()) return EncodeShardError(decoded.status());
  const ShardQueryFrame& frame = *decoded;
  if (frame.enc_query.size() != geometry_.num_attributes) {
    return EncodeShardError(Status::InvalidArgument(
        "shard query has " + std::to_string(frame.enc_query.size()) +
        " attributes, shard database has " +
        std::to_string(geometry_.num_attributes)));
  }
  for (const auto& c : frame.enc_query) {
    if (!pk_.IsValidCiphertext(c)) {
      return EncodeShardError(Status::CryptoError(
          "shard query carries an invalid ciphertext"));
    }
  }
  if (frame.k > geometry_.manifest.total_records) {
    return EncodeShardError(Status::OutOfRange(
        "shard query k = " + std::to_string(frame.k) + " exceeds the " +
        std::to_string(geometry_.manifest.total_records) +
        " database records"));
  }

  QueryMeter meter;
  ProtoContext ctx(&pk_, c2_client_.get(), pool_.get(), frame.query_id,
                   &meter, options_.vectorized_rounds);
  if (frame.deadline_ms > 0) {
    // The coordinator's per-attempt budget: bound every C2 exchange by it
    // so a hung C2 fails this stage as a typed kDeadlineExceeded (which the
    // coordinator may retry on a sibling replica) instead of pinning this
    // worker thread forever.
    ctx.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(frame.deadline_ms));
  }
  Stopwatch watch;
  Result<ShardCandidates> candidates = [&] {
    ScopedOpSink sink(&meter.ops());
    return RunShardStage(ctx, slice_, geometry_.manifest.total_records,
                         frame.enc_query, frame.k, frame.protocol,
                         options_.verify_sbd);
  }();
  if (!candidates.ok()) return EncodeShardError(candidates.status());

  ShardCandidatesFrame out;
  out.candidates = std::move(candidates).value();
  out.seconds = watch.ElapsedSeconds();
  out.traffic = meter.traffic();
  out.ops = meter.ops().snapshot();
  return EncodeShardCandidates(out);
}

Result<Message> ShardWorker::Handle(const Message& request) {
  switch (static_cast<ShardOp>(request.type)) {
    case ShardOp::kShardPing:
      return EncodeShardGeometry(geometry_);
    case ShardOp::kShardQuery:
      return HandleShardQuery(request);
    default:
      // Typed error frame, not a bare RpcServer kError: the coordinator
      // reserves the transport-level failure path for dead workers.
      return EncodeShardError(Status::ProtocolError(
          "shard worker: unexpected opcode " + std::to_string(request.type)));
  }
}

}  // namespace sknn
