#include "serve/table_registry.h"

#include <utility>

namespace sknn {
namespace {

constexpr std::size_t kMaxTableNameLen = 64;

bool ValidTableNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

Status CheckTableName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("TableRegistry: table name is empty");
  }
  if (name.size() > kMaxTableNameLen) {
    return Status::InvalidArgument("TableRegistry: table name '" + name +
                                   "' exceeds 64 characters");
  }
  for (char c : name) {
    if (!ValidTableNameChar(c)) {
      return Status::InvalidArgument(
          "TableRegistry: table name '" + name +
          "' has characters outside [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

}  // namespace

Status TableRegistry::Register(const std::string& name,
                               std::unique_ptr<SknnEngine> engine) {
  SknnEngine* raw = engine.get();
  return RegisterEntry(name, raw, std::move(engine));
}

Status TableRegistry::Register(const std::string& name, SknnEngine* engine) {
  return RegisterEntry(name, engine, nullptr);
}

Status TableRegistry::RegisterEntry(const std::string& name,
                                    SknnEngine* engine,
                                    std::unique_ptr<SknnEngine> owned) {
  if (engine == nullptr) {
    return Status::InvalidArgument("TableRegistry: null engine for table '" +
                                   name + "'");
  }
  SKNN_RETURN_NOT_OK(CheckTableName(name));
  MutexLock lock(&mutex_);
  if (frozen_) {
    return Status::FailedPrecondition(
        "TableRegistry: serving already started; cannot register '" + name +
        "'");
  }
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      return Status::InvalidArgument("TableRegistry: table '" + name +
                                     "' registered twice");
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->engine = engine;
  entry->owned = std::move(owned);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<TableRegistry::Entry*> TableRegistry::Resolve(const std::string& name) {
  MutexLock lock(&mutex_);
  if (name.empty()) {
    if (entries_.empty()) {
      return Status::FailedPrecondition("TableRegistry: no tables registered");
    }
    if (entries_.size() > 1) {
      return Status::InvalidArgument(
          "TableRegistry: " + std::to_string(entries_.size()) +
          " tables are served; the request must name one (kListTables "
          "enumerates them)");
    }
    return entries_.front().get();
  }
  if (Entry* entry = FindLocked(name); entry != nullptr) return entry;
  return Status::NotFound("TableRegistry: unknown table '" + name + "'");
}

TableRegistry::Entry* TableRegistry::Find(const std::string& name) {
  MutexLock lock(&mutex_);
  return FindLocked(name);
}

TableRegistry::Entry* TableRegistry::FindLocked(const std::string& name) {
  if (name.empty()) return nullptr;
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

std::vector<std::string> TableRegistry::names() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry->name);
  return out;
}

std::size_t TableRegistry::size() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

std::vector<TableRegistry::Entry*> TableRegistry::snapshot() const {
  MutexLock lock(&mutex_);
  std::vector<Entry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

}  // namespace sknn
