#include "serve/table_registry.h"

#include <utility>

namespace sknn {
namespace {

constexpr std::size_t kMaxTableNameLen = 64;

bool ValidTableNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

Status CheckTableName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("TableRegistry: table name is empty");
  }
  if (name.size() > kMaxTableNameLen) {
    return Status::InvalidArgument("TableRegistry: table name '" + name +
                                   "' exceeds 64 characters");
  }
  for (char c : name) {
    if (!ValidTableNameChar(c)) {
      return Status::InvalidArgument(
          "TableRegistry: table name '" + name +
          "' has characters outside [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

}  // namespace

Status TableRegistry::Register(const std::string& name,
                               std::unique_ptr<SknnEngine> engine,
                               const std::string& spec) {
  return RegisterEntry(name, std::shared_ptr<SknnEngine>(std::move(engine)),
                       spec);
}

Status TableRegistry::Register(const std::string& name, SknnEngine* engine) {
  // Non-owning: alias the caller's object with a no-op deleter so the
  // shared_ptr plumbing (in-flight queries pinning the engine) still works
  // without the registry ever deleting it.
  return RegisterEntry(
      name, std::shared_ptr<SknnEngine>(engine, [](SknnEngine*) {}), "");
}

Status TableRegistry::RegisterEntry(const std::string& name,
                                    std::shared_ptr<SknnEngine> engine,
                                    const std::string& spec) {
  if (engine == nullptr) {
    return Status::InvalidArgument("TableRegistry: null engine for table '" +
                                   name + "'");
  }
  SKNN_RETURN_NOT_OK(CheckTableName(name));
  MutexLock lock(&mutex_);
  if (frozen_) {
    return Status::FailedPrecondition(
        "TableRegistry: serving already started; cannot register '" + name +
        "' (ReplaceEngine hot-reloads an EXISTING table)");
  }
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      return Status::InvalidArgument("TableRegistry: table '" + name +
                                     "' registered twice");
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  {
    MutexLock entry_lock(&entry->mutex);
    entry->current = std::move(engine);
    entry->spec_value = spec;
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status TableRegistry::ReplaceEngine(const std::string& name,
                                    std::unique_ptr<SknnEngine> engine,
                                    const std::string& spec) {
  if (engine == nullptr) {
    return Status::InvalidArgument(
        "TableRegistry: null replacement engine for table '" + name + "'");
  }
  Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("TableRegistry: unknown table '" + name + "'");
  }
  std::shared_ptr<SknnEngine> replaced;
  {
    MutexLock lock(&entry->mutex);
    replaced = std::move(entry->current);
    entry->current = std::shared_ptr<SknnEngine>(std::move(engine));
    if (!spec.empty()) entry->spec_value = spec;
  }
  entry->detached_flag.store(false, std::memory_order_release);
  // Invalidate AFTER the swap: a query that pinned the cache generation
  // before resolving the OLD engine now fails its generation check on
  // Insert, so the reload can never be raced into a stale cache entry
  // (serve/qos/result_cache.h spells out the ordering argument).
  entry->cache.Invalidate();
  // `replaced` drops here — the old engine destructs NOW if no query holds
  // it, or when the last in-flight query completes (drain-by-shared_ptr).
  return Status::OK();
}

Status TableRegistry::Detach(const std::string& name) {
  Entry* entry = Find(name);
  if (entry == nullptr || entry->detached()) {
    return Status::NotFound("TableRegistry: unknown table '" + name + "'");
  }
  entry->detached_flag.store(true, std::memory_order_release);
  std::shared_ptr<SknnEngine> replaced;
  {
    MutexLock lock(&entry->mutex);
    replaced = std::move(entry->current);
  }
  entry->cache.Invalidate();
  return Status::OK();
}

Result<TableRegistry::Entry*> TableRegistry::Resolve(const std::string& name) {
  MutexLock lock(&mutex_);
  if (name.empty()) {
    Entry* sole = nullptr;
    std::size_t live = 0;
    for (const auto& entry : entries_) {
      if (entry->detached()) continue;
      sole = entry.get();
      ++live;
    }
    if (live == 0) {
      return Status::FailedPrecondition("TableRegistry: no tables registered");
    }
    if (live > 1) {
      return Status::InvalidArgument(
          "TableRegistry: " + std::to_string(live) +
          " tables are served; the request must name one (kListTables "
          "enumerates them)");
    }
    return sole;
  }
  if (Entry* entry = FindLocked(name);
      entry != nullptr && !entry->detached()) {
    return entry;
  }
  return Status::NotFound("TableRegistry: unknown table '" + name + "'");
}

TableRegistry::Entry* TableRegistry::Find(const std::string& name) {
  MutexLock lock(&mutex_);
  return FindLocked(name);
}

TableRegistry::Entry* TableRegistry::FindLocked(const std::string& name) {
  if (name.empty()) return nullptr;
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

std::vector<std::string> TableRegistry::names() const {
  MutexLock lock(&mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (!entry->detached()) out.push_back(entry->name);
  }
  return out;
}

std::size_t TableRegistry::size() const {
  MutexLock lock(&mutex_);
  std::size_t live = 0;
  for (const auto& entry : entries_) {
    if (!entry->detached()) ++live;
  }
  return live;
}

std::vector<TableRegistry::Entry*> TableRegistry::snapshot() const {
  MutexLock lock(&mutex_);
  std::vector<Entry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (!entry->detached()) out.push_back(entry.get());
  }
  return out;
}

std::vector<TableRegistry::Entry*> TableRegistry::snapshot_all() const {
  MutexLock lock(&mutex_);
  std::vector<Entry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

}  // namespace sknn
