// FairAdmission — weighted fair admission control for the serving front end
// (protocol revision 6).
//
// PR 3's admission was one service-wide in-flight budget: first come,
// first admitted, so one hot tenant could consume every slot and starve
// its neighbors indefinitely. This replaces it with weighted fair shares
// over a set of PRINCIPALS (the service instantiates one FairAdmission
// over its tables and, when API-key auth is on, a second one over the
// keys): principal i with weight w_i out of total weight W may hold at
// most
//
//     share_limit_i = max(1, total * w_i / W)
//
// of the `total` in-flight slots. The max(1, ...) floor plus the shares
// summing to at most `total` is the starvation-freedom argument: however
// hard a heavy principal hammers the service, at least one slot per light
// principal can never be taken from it — the property
// bench/bench_serving.cc measures under a Zipf-skewed load and
// tests/test_qos.cc asserts directly.
//
// Each principal optionally carries a token bucket (`rate` admissions per
// second, `burst` capacity): a principal above its rate is rejected even
// when slots are free, bounding sustained throughput rather than just
// concurrency. Everything stays REJECT, NOT QUEUE — an admission that
// does not fit fails immediately with the typed kResourceExhausted the
// thin client's retry policy understands; nothing ever blocks here.
#ifndef SKNN_SERVE_QOS_FAIR_ADMISSION_H_
#define SKNN_SERVE_QOS_FAIR_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sknn {

class FairAdmission {
 public:
  struct PrincipalConfig {
    /// Diagnostic name ("table alpha", "key tenant-a") for error messages.
    std::string name;
    /// Relative share of the in-flight budget; 0 is clamped to 1.
    uint32_t weight = 1;
    /// Sustained admissions per second; 0 = unlimited (no token bucket).
    double rate = 0;
    /// Token-bucket capacity; 0 with a nonzero rate defaults to the rate
    /// (one second of headroom).
    double burst = 0;
  };

  /// \brief `total` in-flight slots (0 clamped to 1) divided among
  /// `principals` by weight. The principal set is fixed for the object's
  /// lifetime — the serving table set is frozen at Start, and a keys file
  /// is loaded once — which keeps admission a handful of integer checks.
  FairAdmission(std::size_t total, std::vector<PrincipalConfig> principals);

  /// \brief Admits one query for principal `index` or explains why not:
  /// kResourceExhausted whether the service budget, the principal's fair
  /// share, or its rate limit is what ran out (the message says which).
  /// Every OK MUST be paired with a Release.
  Status TryAdmit(std::size_t index);

  void Release(std::size_t index);

  std::size_t total() const { return total_; }
  uint32_t share_limit(std::size_t index) const;
  uint64_t in_flight(std::size_t index) const;

 private:
  struct Principal {
    PrincipalConfig config;
    uint32_t share_limit = 1;
    uint64_t in_flight = 0;
    double tokens = 0;
    std::chrono::steady_clock::time_point last_refill;
  };

  const std::size_t total_;
  mutable Mutex mutex_;
  std::vector<Principal> principals_ GUARDED_BY(mutex_);
  std::size_t total_in_flight_ GUARDED_BY(mutex_) = 0;
};

}  // namespace sknn

#endif  // SKNN_SERVE_QOS_FAIR_ADMISSION_H_
