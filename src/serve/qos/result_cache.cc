#include "serve/qos/result_cache.h"

#include <utility>

#include "common/sha256.h"

namespace sknn {

ResultCache::ResultCache(std::size_t max_bytes, std::size_t max_entries)
    : max_bytes_(max_bytes), max_entries_(max_entries == 0 ? 1 : max_entries) {}

void ResultCache::set_budget(std::size_t max_bytes, std::size_t max_entries) {
  MutexLock lock(&mutex_);
  max_bytes_ = max_bytes;
  max_entries_ = max_entries == 0 ? 1 : max_entries;
}

std::size_t ResultCache::max_bytes() const {
  MutexLock lock(&mutex_);
  return max_bytes_;
}

bool ResultCache::enabled() const { return max_bytes() > 0; }

ResultCache::Key ResultCache::Fingerprint(const std::string& table,
                                          const QueryRequest& request) {
  Sha256 hasher;
  hasher.Update(table);
  // Every fixed-width knob as little-endian bytes, length-prefixed strings —
  // an injective encoding, so distinct requests cannot collide structurally.
  const uint32_t knobs[5] = {request.k,
                             static_cast<uint32_t>(request.protocol),
                             static_cast<uint32_t>(request.index_mode),
                             request.probe_clusters,
                             static_cast<uint32_t>(request.record.size())};
  hasher.Update(knobs, sizeof(knobs));
  if (!request.record.empty()) {
    hasher.Update(request.record.data(),
                  request.record.size() * sizeof(int64_t));
  }
  return hasher.Finish();
}

void ResultCache::Invalidate() {
  MutexLock lock(&mutex_);
  // Bump FIRST: an in-flight query that pinned the old generation must see
  // its Insert refused even if it races the clear below.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

std::size_t ResultCache::CostOf(const CachedResult& result) {
  std::size_t cost = sizeof(Node) + sizeof(Key) + sizeof(QueryResponse);
  for (const PlainRecord& record : result.response.records) {
    cost += record.size() * sizeof(int64_t);
  }
  cost += result.response.shards.size() * sizeof(ShardQueryStats);
  for (const Ciphertext& ct : result.encrypted) {
    cost += (ct.value().BitLength() + 7) / 8 + sizeof(Ciphertext);
  }
  return cost;
}

std::optional<ResultCache::CachedResult> ResultCache::Lookup(const Key& key) {
  MutexLock lock(&mutex_);
  if (max_bytes_ == 0) return std::nullopt;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.result;
}

void ResultCache::Insert(const Key& key, CachedResult result,
                         uint64_t generation) {
  const std::size_t cost = CostOf(result);
  MutexLock lock(&mutex_);
  if (max_bytes_ == 0 || cost > max_bytes_) return;
  if (generation_.load(std::memory_order_acquire) != generation) {
    // The engine this result came from was hot-reloaded away between the
    // caller pinning the generation and finishing its protocol run; caching
    // it would serve the OLD table's answer against the NEW table.
    return;
  }
  if (auto it = entries_.find(key); it != entries_.end()) {
    bytes_ -= it->second.cost;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  lru_.push_front(key);
  Node node;
  node.result = std::move(result);
  node.cost = cost;
  node.lru_pos = lru_.begin();
  bytes_ += cost;
  entries_.emplace(key, std::move(node));
  EvictToBudgetLocked();
}

void ResultCache::EvictToBudgetLocked() {
  while (!lru_.empty() &&
         (bytes_ > max_bytes_ || entries_.size() > max_entries_)) {
    auto it = entries_.find(lru_.back());
    bytes_ -= it->second.cost;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(&mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace sknn
