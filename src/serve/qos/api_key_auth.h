// ApiKeyAuth — the per-user API-key registry of the serving QoS subsystem
// (protocol revision 6).
//
// A multi-tenant front end started with `sknn_c1_server --api-keys FILE`
// requires every session to present a key (wire kAuthenticate, sent after
// the hello) before its kQuery frames are served; the control plane stays
// open so operators can introspect an instance without credentials. The
// FILE holds one key per line,
//
//     id:sha256hex:quota:weight
//
// where `sha256hex` is the lowercase SHA-256 digest of the raw key — the
// raw credential never touches the server's disk. (Digests are unsalted:
// API keys are expected to be high-entropy random tokens, where a salt
// adds nothing; this is not a password store. docs/DEPLOY.md says how to
// generate both halves.) `quota` is the total number of queries the key
// may run over the server's lifetime, 0 = unlimited; once it is spent,
// further queries are rejected with the same typed kResourceExhausted as
// admission overload — deliberately, so client retry policy treats "out
// of quota" and "server busy" as one backoff case while the per-key stats
// (kServiceStats) distinguish them for the operator. A key that does not
// verify is kPermissionDenied: retrying cannot help, fix the credential.
// `weight` feeds the per-key FairAdmission the service builds, so tenants
// sharing a table still get weighted fair slots.
#ifndef SKNN_SERVE_QOS_API_KEY_AUTH_H_
#define SKNN_SERVE_QOS_API_KEY_AUTH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sknn {

class ApiKeyAuth {
 public:
  /// \brief One key's registration plus live counters, the per-key section
  /// of kServiceStatsResult.
  struct KeyStats {
    std::string id;
    uint64_t completed = 0;
    uint64_t denied = 0;
    uint64_t quota_rejected = 0;
    uint64_t quota = 0;  // 0 = unlimited
    uint64_t remaining = 0;
    uint32_t weight = 1;
  };

  /// \brief Parses a keys file (id:sha256hex:quota:weight per line, '#'
  /// comments and blank lines skipped). Rejects duplicate ids, malformed
  /// digests, and empty files — a server asked to authenticate against
  /// nothing is a misconfiguration, not an open door.
  static Result<std::unique_ptr<ApiKeyAuth>> LoadFromFile(
      const std::string& path);

  /// \brief In-memory construction for tests: each (id, raw_key, quota,
  /// weight) tuple is hashed here.
  struct KeyEntry {
    std::string id;
    std::string raw_key;
    uint64_t quota = 0;
    uint32_t weight = 1;
  };
  static Result<std::unique_ptr<ApiKeyAuth>> FromEntries(
      const std::vector<KeyEntry>& entries);

  /// \brief Verifies a raw key: the index of the matching registration, or
  /// kPermissionDenied. A failed presentation is attributable to no key (the
  /// presenter is unknown by definition); the service-wide auth_rejected
  /// counter is where those land.
  Result<std::size_t> Authenticate(const std::string& raw_key);

  /// \brief Charges one query against key `index`'s quota; typed
  /// kResourceExhausted once it is spent.
  Status ChargeQuery(std::size_t index);
  /// \brief Refunds a charge whose query was never admitted (the fair-share
  /// or rate check after the quota check said no) — a rejection must not
  /// consume quota.
  void RefundQuery(std::size_t index);
  void NoteCompleted(std::size_t index);
  /// \brief Counts a non-quota rejection (fair share, rate, total budget)
  /// against key `index` — the operator's per-tenant overload signal.
  void NoteDenied(std::size_t index);

  std::size_t size() const;
  const std::string& id(std::size_t index) const;
  uint32_t weight(std::size_t index) const;

  std::vector<KeyStats> Snapshot() const;

 private:
  struct Key {
    std::string id;
    std::string digest_hex;
    uint64_t quota = 0;
    uint32_t weight = 1;
    std::atomic<uint64_t> remaining{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> denied{0};
    std::atomic<uint64_t> quota_rejected{0};
  };

  static Result<std::unique_ptr<ApiKeyAuth>> FromParsed(
      std::vector<std::unique_ptr<Key>> keys);

  /// unique_ptr elements: Key holds atomics (immovable) and the vector is
  /// immutable after construction, so indexes are stable session state.
  std::vector<std::unique_ptr<Key>> keys_;
};

}  // namespace sknn

#endif  // SKNN_SERVE_QOS_API_KEY_AUTH_H_
