#include "serve/qos/api_key_auth.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/sha256.h"

namespace sknn {
namespace {

bool IsHex64(const std::string& text) {
  if (text.size() != 64) return false;
  for (char c : text) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

Result<std::unique_ptr<ApiKeyAuth>> ApiKeyAuth::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("ApiKeyAuth: cannot open keys file '" + path + "'");
  }
  std::vector<std::unique_ptr<Key>> keys;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    const std::string where = path + ":" + std::to_string(line_no);
    std::istringstream fields(line);
    std::string id, digest, quota_text, weight_text;
    if (!std::getline(fields, id, ':') || !std::getline(fields, digest, ':') ||
        !std::getline(fields, quota_text, ':') ||
        !std::getline(fields, weight_text)) {
      return Status::InvalidArgument(
          "ApiKeyAuth: " + where + " is not id:sha256hex:quota:weight");
    }
    if (id.empty() || id.size() > 64) {
      return Status::InvalidArgument("ApiKeyAuth: " + where +
                                     " has an empty or oversized key id");
    }
    if (!IsHex64(digest)) {
      return Status::InvalidArgument(
          "ApiKeyAuth: " + where +
          " digest is not 64 lowercase hex characters (sha256sum output)");
    }
    uint64_t quota = 0;
    uint64_t weight = 1;
    if (!ParseU64(quota_text, &quota) || !ParseU64(weight_text, &weight) ||
        weight == 0 || weight > UINT32_MAX) {
      return Status::InvalidArgument(
          "ApiKeyAuth: " + where +
          " quota/weight are not decimal (weight must be in [1, 2^32))");
    }
    auto key = std::make_unique<Key>();
    key->id = id;
    key->digest_hex = digest;
    key->quota = quota;
    key->weight = static_cast<uint32_t>(weight);
    key->remaining.store(quota);
    keys.push_back(std::move(key));
  }
  return FromParsed(std::move(keys));
}

Result<std::unique_ptr<ApiKeyAuth>> ApiKeyAuth::FromEntries(
    const std::vector<KeyEntry>& entries) {
  std::vector<std::unique_ptr<Key>> keys;
  keys.reserve(entries.size());
  for (const KeyEntry& entry : entries) {
    auto key = std::make_unique<Key>();
    key->id = entry.id;
    key->digest_hex = Sha256::HexDigest(entry.raw_key);
    key->quota = entry.quota;
    key->weight = entry.weight == 0 ? 1 : entry.weight;
    key->remaining.store(entry.quota);
    keys.push_back(std::move(key));
  }
  return FromParsed(std::move(keys));
}

Result<std::unique_ptr<ApiKeyAuth>> ApiKeyAuth::FromParsed(
    std::vector<std::unique_ptr<Key>> keys) {
  if (keys.empty()) {
    return Status::InvalidArgument(
        "ApiKeyAuth: no keys registered — an auth-enabled server with an "
        "empty keys file could never serve a query");
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      if (keys[i]->id == keys[j]->id) {
        return Status::InvalidArgument("ApiKeyAuth: key id '" + keys[i]->id +
                                       "' registered twice");
      }
    }
  }
  auto auth = std::unique_ptr<ApiKeyAuth>(new ApiKeyAuth());
  auth->keys_ = std::move(keys);
  return auth;
}

Result<std::size_t> ApiKeyAuth::Authenticate(const std::string& raw_key) {
  const std::string digest = Sha256::HexDigest(raw_key);
  // Compare against every registration (no early exit on id): with a
  // handful of tenants this is cheap, and the uniform scan avoids leaking
  // which prefix of the registry matched through timing.
  std::size_t found = keys_.size();
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i]->digest_hex == digest && found == keys_.size()) found = i;
  }
  if (found == keys_.size()) {
    return Status::PermissionDenied(
        "ApiKeyAuth: unknown API key (check --api-key against the server's "
        "keys file)");
  }
  return found;
}

Status ApiKeyAuth::ChargeQuery(std::size_t index) {
  Key& key = *keys_.at(index);
  if (key.quota == 0) return Status::OK();  // unlimited
  uint64_t remaining = key.remaining.load();
  do {
    if (remaining == 0) {
      key.quota_rejected.fetch_add(1);
      return Status::ResourceExhausted(
          "ApiKeyAuth: key '" + key.id + "' spent its quota of " +
          std::to_string(key.quota) + " queries");
    }
  } while (!key.remaining.compare_exchange_weak(remaining, remaining - 1));
  return Status::OK();
}

void ApiKeyAuth::RefundQuery(std::size_t index) {
  Key& key = *keys_.at(index);
  if (key.quota == 0) return;
  key.remaining.fetch_add(1);
}

void ApiKeyAuth::NoteCompleted(std::size_t index) {
  keys_.at(index)->completed.fetch_add(1);
}

void ApiKeyAuth::NoteDenied(std::size_t index) {
  keys_.at(index)->denied.fetch_add(1);
}

std::size_t ApiKeyAuth::size() const { return keys_.size(); }

const std::string& ApiKeyAuth::id(std::size_t index) const {
  return keys_.at(index)->id;
}

uint32_t ApiKeyAuth::weight(std::size_t index) const {
  return keys_.at(index)->weight;
}

std::vector<ApiKeyAuth::KeyStats> ApiKeyAuth::Snapshot() const {
  std::vector<KeyStats> out;
  out.reserve(keys_.size());
  for (const auto& key : keys_) {
    KeyStats stats;
    stats.id = key->id;
    stats.completed = key->completed.load();
    stats.denied = key->denied.load();
    stats.quota_rejected = key->quota_rejected.load();
    stats.quota = key->quota;
    stats.remaining = key->remaining.load();
    stats.weight = key->weight;
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace sknn
