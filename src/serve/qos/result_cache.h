// ResultCache — the per-table rerandomized response cache of the serving
// QoS subsystem (protocol revision 6).
//
// Every kQuery a front end answers is deterministic given (table contents,
// query record, k, protocol, index knobs), so identical requests against an
// unchanged table can be answered from memory instead of re-running seconds
// of homomorphic work. The catch is unlinkability: serving the SAME bytes
// twice would let a network observer correlate two queries. The cache
// therefore stores, next to the plaintext response, the k×m result
// attributes encrypted under the TABLE's Paillier key, and every hit is
// served with those ciphertexts refreshed by Paillier rerandomization
// (c · r^N) — two hits on one entry decrypt to bitwise-identical records
// while sharing no bytes on the wire. (The demo wire carries the plaintext
// records either way — docs/DEPLOY.md, "Trust model of the thin-client
// split" — so the ciphertext tail is where the unlinkability property
// actually lives, and what tests/test_qos.cc proves differentially.)
//
// Keys are SHA-256 fingerprints over every request field that influences
// the answer: table name, k, protocol, index_mode, probe_clusters, and the
// query record bytes. The cache is bounded twice over (entry count and
// byte budget) with LRU eviction, and carries a GENERATION counter for hot
// reload: TableRegistry::ReplaceEngine/Detach call Invalidate(), which
// clears every entry and bumps the generation, and a query that pinned
// generation G before resolving its engine may only Insert while the
// generation is still G. That ordering (generation read BEFORE engine
// read, invalidate AFTER engine swap) is what makes a reload racing an
// in-flight query unable to plant a stale entry — the race
// tests/test_hot_reload.cc exercises.
#ifndef SKNN_SERVE_QOS_RESULT_CACHE_H_
#define SKNN_SERVE_QOS_RESULT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query_api.h"
#include "crypto/paillier.h"

namespace sknn {

class ResultCache {
 public:
  /// 32-byte SHA-256 fingerprint of everything that determines a response.
  using Key = std::array<uint8_t, 32>;

  /// \brief What one entry holds: the FULL response of the run that
  /// populated it (records, shard stats, phase breakdown — a hit reports
  /// the instrumentation of that original run, flagged by cache_hit), plus
  /// the result-attribute ciphertexts under the table's public key
  /// (rerandomized by the caller on every hit, never served as stored; the
  /// stored response's own encrypted_records stay empty).
  struct CachedResult {
    QueryResponse response;
    std::vector<Ciphertext> encrypted;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  /// \brief `max_bytes` 0 (the DEFAULT) disables the cache entirely —
  /// Lookup always misses without counting, Insert drops — so an
  /// unconfigured service behaves exactly like the pre-revision-6 one.
  /// tools/sknn_c1_server enables kDefaultMaxBytes per table unless the
  /// spec says cache=0; docs/DEPLOY.md discusses sizing.
  explicit ResultCache(std::size_t max_bytes = 0,
                       std::size_t max_entries = kDefaultMaxEntries);

  static constexpr std::size_t kDefaultMaxBytes = 8u << 20;
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  /// \brief Reconfigures the budgets (serving-start configuration only —
  /// existing entries beyond the new budget are evicted on the next
  /// Insert, not eagerly).
  void set_budget(std::size_t max_bytes, std::size_t max_entries);

  std::size_t max_bytes() const;
  bool enabled() const;

  static Key Fingerprint(const std::string& table,
                         const QueryRequest& request);

  /// \brief The generation a query must pin BEFORE resolving its engine.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// \brief Clears every entry and advances the generation — the hot-reload
  /// and detach barrier. Called AFTER the registry swapped the engine, so
  /// any in-flight query still holding the old engine also holds a stale
  /// generation and its Insert is refused.
  void Invalidate();

  /// \brief LRU lookup; counts a hit or a miss. The returned copy is the
  /// caller's to rerandomize — the stored ciphertexts are never mutated.
  std::optional<CachedResult> Lookup(const Key& key);

  /// \brief Inserts (or refreshes) an entry, evicting LRU tails past either
  /// budget. Dropped without effect when `generation` no longer matches —
  /// the caller computed its response against an engine that has since been
  /// reloaded away — or when the result alone exceeds the byte budget.
  void Insert(const Key& key, CachedResult result, uint64_t generation);

  Stats stats() const;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // The fingerprint is already uniform; fold the first 8 bytes.
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | key[static_cast<size_t>(i)];
      return h;
    }
  };
  struct Node {
    CachedResult result;
    std::size_t cost = 0;
    std::list<Key>::iterator lru_pos;
  };

  static std::size_t CostOf(const CachedResult& result);
  void EvictToBudgetLocked() REQUIRES(mutex_);

  std::atomic<uint64_t> generation_{0};
  mutable Mutex mutex_;
  std::size_t max_bytes_ GUARDED_BY(mutex_);
  std::size_t max_entries_ GUARDED_BY(mutex_);
  std::unordered_map<Key, Node, KeyHash> entries_ GUARDED_BY(mutex_);
  /// Most-recent first; evictions pop from the back.
  std::list<Key> lru_ GUARDED_BY(mutex_);
  std::size_t bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace sknn

#endif  // SKNN_SERVE_QOS_RESULT_CACHE_H_
