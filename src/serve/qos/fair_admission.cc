#include "serve/qos/fair_admission.h"

#include <algorithm>
#include <utility>

namespace sknn {

FairAdmission::FairAdmission(std::size_t total,
                             std::vector<PrincipalConfig> principals)
    : total_(std::max<std::size_t>(1, total)) {
  uint64_t total_weight = 0;
  for (PrincipalConfig& config : principals) {
    if (config.weight == 0) config.weight = 1;
    if (config.rate > 0 && config.burst <= 0) config.burst = config.rate;
    total_weight += config.weight;
  }
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(&mutex_);
  principals_.reserve(principals.size());
  for (PrincipalConfig& config : principals) {
    Principal principal;
    principal.share_limit = static_cast<uint32_t>(std::max<uint64_t>(
        1, total_ * config.weight / std::max<uint64_t>(1, total_weight)));
    principal.tokens = config.burst;
    principal.last_refill = now;
    principal.config = std::move(config);
    principals_.push_back(std::move(principal));
  }
}

Status FairAdmission::TryAdmit(std::size_t index) {
  MutexLock lock(&mutex_);
  Principal& principal = principals_.at(index);
  if (principal.config.rate > 0) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - principal.last_refill).count();
    principal.last_refill = now;
    principal.tokens = std::min(principal.config.burst,
                                principal.tokens +
                                    elapsed * principal.config.rate);
    if (principal.tokens < 1.0) {
      return Status::ResourceExhausted(
          "FairAdmission: " + principal.config.name + " is over its rate of " +
          std::to_string(principal.config.rate) + "/s; retry");
    }
    // Charged only once every other check passes — a rejection for a full
    // share must not also burn a token.
  }
  if (principal.in_flight >= principal.share_limit) {
    return Status::ResourceExhausted(
        "FairAdmission: " + principal.config.name + " holds its fair share (" +
        std::to_string(principal.share_limit) + " of " +
        std::to_string(total_) + " slots); retry");
  }
  if (total_in_flight_ >= total_) {
    return Status::ResourceExhausted(
        "FairAdmission: " + std::to_string(total_) +
        " queries in flight; retry");
  }
  if (principal.config.rate > 0) principal.tokens -= 1.0;
  ++principal.in_flight;
  ++total_in_flight_;
  return Status::OK();
}

void FairAdmission::Release(std::size_t index) {
  MutexLock lock(&mutex_);
  Principal& principal = principals_.at(index);
  if (principal.in_flight > 0) --principal.in_flight;
  if (total_in_flight_ > 0) --total_in_flight_;
}

uint32_t FairAdmission::share_limit(std::size_t index) const {
  MutexLock lock(&mutex_);
  return principals_.at(index).share_limit;
}

uint64_t FairAdmission::in_flight(std::size_t index) const {
  MutexLock lock(&mutex_);
  return principals_.at(index).in_flight;
}

}  // namespace sknn
