// RemoteQueryClient — the thin Bob of the serving deployment.
//
// Connects to a QueryService (tools/sknn_c1_server), sends one
// plaintext-record QueryRequest per call and gets the QueryResponse back —
// records plus the full per-query instrumentation — without ever loading
// the encrypted database or driving the protocol itself. This is what lets
// one standing front end serve many lightweight clients.
//
// Errors arrive as real Statuses: kResourceExhausted means the front end's
// admission budget is full (back off and retry); kInvalidArgument /
// kOutOfRange mean the request itself is wrong. Query() is thread-safe —
// concurrent calls on one connection are demultiplexed by correlation id —
// but the front end answers a connection's requests one at a time unless
// its Options::connection_workers is raised.
#ifndef SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
#define SKNN_SERVE_REMOTE_QUERY_CLIENT_H_

#include <memory>
#include <string>

#include "core/query_api.h"
#include "net/rpc.h"

namespace sknn {

class RemoteQueryClient {
 public:
  /// \brief Connects to a QueryService at host:port.
  static Result<std::unique_ptr<RemoteQueryClient>> Connect(
      const std::string& host, uint16_t port);

  /// \brief Wraps an already-connected link (tests: in-memory channel).
  explicit RemoteQueryClient(std::unique_ptr<Endpoint> link)
      : rpc_(std::move(link)) {}

  /// \brief One query, one round trip.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// \brief Closes the connection; in-flight calls fail.
  void Close() { rpc_.Shutdown(); }

 private:
  RpcClient rpc_;
};

}  // namespace sknn

#endif  // SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
