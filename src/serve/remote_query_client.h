// RemoteQueryClient — the thin Bob of the serving deployment.
//
// Connects to a QueryService (tools/sknn_c1_server), negotiates the
// versioned wire contract (an explicit Hello(), or an automatic one before
// the first call — either way a server from the wrong protocol era answers
// with a typed Status instead of garbage), then sends one plaintext-record
// QueryRequest per call — naming the target table when the front end hosts
// several — and gets the QueryResponse back: records plus the full
// per-query instrumentation, without ever loading the encrypted database
// or driving the protocol itself. This is what lets one standing front end
// serve many lightweight clients across many tables.
//
// The control plane rides the same connection: ListTables() enumerates
// what is served, TableInfo() reports one table's geometry and shard
// topology, ServiceStats() the per-table admission counters — the calls
// sknn_admin prints.
//
// Errors arrive as real Statuses: kResourceExhausted means the front end's
// admission budget is full (back off and retry — QueryWithRetry implements
// the well-behaved client: exponential backoff with bounded jitter, so a
// burst of synchronized thin clients decorrelates instead of re-arriving
// in lockstep, under a max-elapsed cap); kInvalidArgument / kOutOfRange /
// kNotFound mean the request itself is wrong — retrying cannot help.
// Query() is thread-safe — concurrent calls on one connection are
// demultiplexed by correlation id — but the front end answers a
// connection's requests one at a time unless its
// Options::connection_workers is raised.
#ifndef SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
#define SKNN_SERVE_REMOTE_QUERY_CLIENT_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/query_api.h"
#include "net/query_wire.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/rpc.h"

namespace sknn {

/// \brief How QueryWithRetry behaves when the front end says
/// kResourceExhausted. Exponential backoff, full jitter on the top
/// `jitter` fraction of each delay, two caps: per-sleep (max_backoff) and
/// total elapsed (max_elapsed — the client gives up rather than retry
/// forever against a saturated service).
struct RetryPolicy {
  /// Total attempts, the first one included. 0 behaves as 1.
  int max_attempts = 6;
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  /// Give up once the next sleep would push the total elapsed time past
  /// this. Zero or negative = no elapsed cap.
  std::chrono::milliseconds max_elapsed{30000};
  /// Fraction of each backoff that is uniformly random, in [0, 1]. 0 =
  /// deterministic (lockstep — only sensible in tests); 1 = full jitter.
  double jitter = 0.5;
  /// Also retry kUnavailable (a dead shard worker mid-query). Off by
  /// default: unlike backpressure, recovery is possible but not expected.
  bool retry_unavailable = false;
};

/// \brief The sleep before retry attempt `attempt` (1 = the sleep after the
/// first failure): min(max_backoff, initial_backoff * 2^(attempt-1)),
/// with the top `jitter` fraction scaled by `uniform01` in [0, 1). Pure —
/// QueryWithRetry feeds it thread-local randomness; tests feed it corners.
std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy, int attempt,
                                       double uniform01);

class RemoteQueryClient {
 public:
  /// \brief Connects to a QueryService at host:port. The hello handshake
  /// runs lazily before the first call (or explicitly via Hello()).
  static Result<std::unique_ptr<RemoteQueryClient>> Connect(
      const std::string& host, uint16_t port);

  /// \brief Wraps an already-connected link (tests: in-memory channel).
  explicit RemoteQueryClient(std::unique_ptr<Endpoint> link)
      : rpc_(std::move(link)) {}

  /// \brief Negotiates the session: sends this build's protocol revision
  /// and feature bits, returns the server's. Idempotent — later calls
  /// return the cached ack without another round trip. Every other method
  /// calls this implicitly first.
  Result<HelloInfo> Hello();

  /// \brief One query, one round trip (after the implicit hello).
  /// request.table targets one of a multi-table front end's tables
  /// (empty = the sole table).
  Result<QueryResponse> Query(const QueryRequest& request);

  /// \brief Query(), retrying kResourceExhausted per `policy`. Returns the
  /// last error when attempts or the elapsed cap run out.
  Result<QueryResponse> QueryWithRetry(const QueryRequest& request,
                                       const RetryPolicy& policy);

  /// \brief The names the front end serves, registration order.
  Result<std::vector<std::string>> ListTables();

  /// \brief One table's geometry + shard topology ("" = the sole table).
  Result<TableInfoReply> TableInfo(const std::string& table);

  /// \brief Service-wide counters: uptime, in-flight, per-table admission
  /// accounting.
  Result<ServiceStatsReply> ServiceStats();

  /// \brief Closes the connection; in-flight calls fail.
  void Close() { rpc_.Shutdown(); }

 private:
  /// \brief Runs the handshake once; concurrent first calls serialize.
  Status EnsureHello();
  /// \brief One negotiated round trip: hello first, then `request`;
  /// kQueryError replies come back as their carried Status.
  Result<Message> Call(Message request);

  RpcClient rpc_;
  /// Held across the handshake round trip on purpose: concurrent first
  /// callers serialize behind one hello instead of each sending their own.
  Mutex hello_mutex_;
  bool hello_done_ GUARDED_BY(hello_mutex_) = false;
  HelloInfo server_hello_ GUARDED_BY(hello_mutex_);
};

}  // namespace sknn

#endif  // SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
