// RemoteQueryClient — the thin Bob of the serving deployment.
//
// Connects to a QueryService (tools/sknn_c1_server), negotiates the
// versioned wire contract (an explicit Hello(), or an automatic one before
// the first call — either way a server from the wrong protocol era answers
// with a typed Status instead of garbage), then sends one plaintext-record
// QueryRequest per call — naming the target table when the front end hosts
// several — and gets the QueryResponse back: records plus the full
// per-query instrumentation, without ever loading the encrypted database
// or driving the protocol itself. This is what lets one standing front end
// serve many lightweight clients across many tables.
//
// Failover: Connect() also accepts a LIST of "host:port" endpoints. The
// client speaks to one front end at a time; when the link dies (connect
// refused, connection reset, or a per-call deadline with no answer) it
// rotates to the next endpoint, re-runs the hello handshake there, and
// re-sends the call. Queries are safe to re-send: the protocol's
// deterministic tie-break makes the answer a pure function of
// (table, query, k), so a query that fails over returns bitwise the same
// records it would have from the first endpoint.
//
// Deadlines: a QueryRequest with deadline_ms > 0 is enforced server-side
// (the coordinator turns a hung shard worker into kDeadlineExceeded); the
// client additionally arms its own RPC timeout at deadline_ms plus a grace
// period, so even a front end that is itself hung resolves to
// kDeadlineExceeded instead of blocking forever.
//
// The control plane rides the same connection: ListTables() enumerates
// what is served, TableInfo() reports one table's geometry and shard
// topology, ServiceStats() the per-table admission counters, Health() the
// per-replica liveness — the calls sknn_admin prints. ReloadTable() and
// DetachTable() are the admin mutations; when ANY admin triggers one, every
// connected client hears about it through the kTableChanged note
// (set_table_changed_handler).
//
// Errors arrive as real Statuses: kResourceExhausted means the front end's
// admission budget is full (back off and retry — QueryWithRetry implements
// the well-behaved client: exponential backoff with bounded jitter, so a
// burst of synchronized thin clients decorrelates instead of re-arriving
// in lockstep, under a max-elapsed cap); kInvalidArgument / kOutOfRange /
// kNotFound mean the request itself is wrong — retrying cannot help.
// Query() is thread-safe — concurrent calls on one connection are
// demultiplexed by correlation id — but the front end answers a
// connection's requests one at a time unless its
// Options::connection_workers is raised.
#ifndef SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
#define SKNN_SERVE_REMOTE_QUERY_CLIENT_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/query_api.h"
#include "net/query_wire.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/rpc.h"

namespace sknn {

/// \brief How QueryWithRetry behaves when the front end says
/// kResourceExhausted. Exponential backoff, full jitter on the top
/// `jitter` fraction of each delay, two caps: per-sleep (max_backoff) and
/// total elapsed (max_elapsed — the client gives up rather than retry
/// forever against a saturated service).
struct RetryPolicy {
  /// Total attempts, the first one included. 0 behaves as 1.
  int max_attempts = 6;
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  /// Give up once the next sleep would push the total elapsed time past
  /// this. Zero or negative = no elapsed cap.
  std::chrono::milliseconds max_elapsed{30000};
  /// Fraction of each backoff that is uniformly random, in [0, 1]. 0 =
  /// deterministic (lockstep — only sensible in tests); 1 = full jitter.
  double jitter = 0.5;
  /// Also retry kUnavailable and kDeadlineExceeded (a dead or hung worker
  /// mid-query). Off by default for a SINGLE endpoint — recovery is
  /// possible but not expected; a client connected to SEVERAL endpoints
  /// retries these regardless (rotating first), because that is what the
  /// replica list is for.
  bool retry_unavailable = false;
};

/// \brief The sleep before retry attempt `attempt` (1 = the sleep after the
/// first failure): min(max_backoff, initial_backoff * 2^(attempt-1)),
/// with the top `jitter` fraction scaled by `uniform01` in [0, 1). Pure —
/// QueryWithRetry feeds it thread-local randomness; tests feed it corners.
std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy, int attempt,
                                       double uniform01);

/// \brief The retry matrix in one place: true exactly for the codes where a
/// retry can help — kResourceExhausted (admission or quota pressure clears),
/// kUnavailable (a dead peer may recover), kDeadlineExceeded (a slow peer
/// may answer in time elsewhere). Everything else — kInvalidArgument,
/// kNotFound, kPermissionDenied, protocol/crypto errors — is a property of
/// the REQUEST or the CREDENTIAL, and re-sending it verbatim reproduces the
/// failure; QueryWithRetry fails those fast on the first answer.
bool RetryableStatusCode(StatusCode code);

class RemoteQueryClient {
 public:
  /// \brief Connects to a QueryService at host:port. The hello handshake
  /// runs lazily before the first call (or explicitly via Hello()).
  static Result<std::unique_ptr<RemoteQueryClient>> Connect(
      const std::string& host, uint16_t port);

  /// \brief Connects to the FIRST reachable of several equivalent
  /// "host:port" front ends; the rest are failover targets the client
  /// rotates to when its current link dies mid-session.
  static Result<std::unique_ptr<RemoteQueryClient>> Connect(
      const std::vector<std::string>& endpoints);

  /// \brief Wraps an already-connected link (tests: in-memory channel).
  /// No failover targets: when this link dies, calls fail.
  explicit RemoteQueryClient(std::unique_ptr<Endpoint> link);

  /// \brief Negotiates the session: sends this build's protocol revision
  /// and feature bits, returns the server's. Idempotent — later calls
  /// return the cached ack without another round trip (re-run
  /// automatically after a failover). Every other method calls this
  /// implicitly first.
  Result<HelloInfo> Hello();

  /// \brief Arms API-key authentication: the raw key rides a kAuthenticate
  /// frame right after every hello — including the re-hello after a
  /// failover, so a rotated session is re-authenticated transparently.
  /// Against an auth-less server the frame is acked as a no-op. Call
  /// before the first query; a bad key surfaces as kPermissionDenied from
  /// whichever call triggered the handshake.
  void set_api_key(std::string key);

  /// \brief Forces the handshake (hello + authenticate) and returns the
  /// key id the server acked — "" on an open server or when no key is set.
  Result<std::string> AuthenticatedKeyId();

  /// \brief One query, one round trip (after the implicit hello).
  /// request.table targets one of a multi-table front end's tables
  /// (empty = the sole table). request.deadline_ms > 0 additionally arms a
  /// client-side RPC timeout of deadline_ms plus a grace period.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// \brief Query(), retrying kResourceExhausted per `policy` (plus
  /// kUnavailable/kDeadlineExceeded when policy.retry_unavailable is set or
  /// several endpoints were given — rotating endpoints before those).
  /// Returns the last error when attempts or the elapsed cap run out.
  Result<QueryResponse> QueryWithRetry(const QueryRequest& request,
                                       const RetryPolicy& policy);

  /// \brief The names the front end serves, registration order.
  Result<std::vector<std::string>> ListTables();

  /// \brief One table's geometry + shard topology ("" = the sole table).
  Result<TableInfoReply> TableInfo(const std::string& table);

  /// \brief Service-wide counters: uptime, in-flight, per-table admission
  /// accounting.
  Result<ServiceStatsReply> ServiceStats();

  /// \brief Per-table, per-shard replica liveness (what sknn_admin --health
  /// prints).
  Result<HealthReply> Health();

  /// \brief Hot-reloads `table` on the front end: rebuilds it from `spec`
  /// (or, when empty, from the spec the server recorded at registration)
  /// and atomically swaps it in. Returns the acked table name.
  Result<std::string> ReloadTable(const std::string& table,
                                  const std::string& spec = "");

  /// \brief Tombstones `table` on the front end: subsequent queries answer
  /// kNotFound until a reload revives it.
  Result<std::string> DetachTable(const std::string& table);

  /// \brief Installs a handler for the server's kTableChanged notes (a
  /// table was hot-reloaded or detached under this session). Runs on the
  /// RPC demux thread — keep it fast; re-installed automatically across
  /// failover reconnects. Pass nullptr to uninstall. Thread-safe.
  using TableChangedHandler = std::function<void(const TableChangedNote&)>;
  void set_table_changed_handler(TableChangedHandler handler);

  /// \brief Closes the connection; in-flight calls fail and no redial
  /// happens afterwards.
  void Close();

 private:
  /// \brief The connected-and-helloed RPC link, dialing/rotating through
  /// endpoints_ as needed. Held across the handshake round trip on
  /// purpose: concurrent first callers serialize behind one hello instead
  /// of each sending their own.
  Result<std::shared_ptr<RpcClient>> EnsureLink();
  /// \brief Drops `failed` if it is still the current link, so the next
  /// EnsureLink dials the NEXT endpoint. No-op when another thread already
  /// replaced it.
  void DropLink(const std::shared_ptr<RpcClient>& failed);
  /// \brief Drops the current link and advances to the next endpoint —
  /// QueryWithRetry's front-end rotation on a server-reported
  /// kUnavailable/kDeadlineExceeded.
  void RotateEndpoint();
  /// \brief One negotiated round trip: hello first, then `request`;
  /// kQueryError replies come back as their carried Status. Transport
  /// failures fail over across endpoints_ (one dial per endpoint).
  Result<Message> Call(const Message& request,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds{0});
  void InstallNoteHandler(RpcClient* rpc) REQUIRES(mutex_);

  /// Failover targets; empty when constructed around an existing link.
  std::vector<std::string> endpoints_;
  mutable Mutex mutex_;
  std::shared_ptr<RpcClient> rpc_ GUARDED_BY(mutex_);
  bool hello_done_ GUARDED_BY(mutex_) = false;
  HelloInfo server_hello_ GUARDED_BY(mutex_);
  /// Raw API key to present after every hello; "" = none configured.
  std::string api_key_ GUARDED_BY(mutex_);
  bool auth_done_ GUARDED_BY(mutex_) = false;
  /// The key id the server acked for this session.
  std::string key_id_ GUARDED_BY(mutex_);
  /// Next endpoints_ slot to dial (mod size); advanced on every drop.
  std::size_t endpoint_idx_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
  mutable Mutex handler_mutex_;
  TableChangedHandler table_changed_ GUARDED_BY(handler_mutex_);
};

}  // namespace sknn

#endif  // SKNN_SERVE_REMOTE_QUERY_CLIENT_H_
