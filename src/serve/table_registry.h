// TableRegistry — the named-table catalog behind a multi-table front end.
//
// One sknn_c1_server process may serve many independent encrypted tables:
// each registered entry is a complete SknnEngine — its own Paillier keys,
// its own database (or shard topology), its own C2 link — discovered by
// clients through the control plane (kListTables / kTableInfo) and targeted
// per query by the `table` field of the wire QueryRequest. This is the
// multi-tenant shape of "Secure k-NN as a Service" deployments: data owners
// share one serving deployment without sharing any cryptographic material.
//
// The registry also owns the per-table admission accounting
// (completed/failed/rejected/in-flight counters) that kServiceStats
// reports: admission itself stays service-wide (one budget protects one
// process), attribution is per table.
//
// Lifecycle: register every table BEFORE handing the registry to a
// QueryService; registration of NEW names is rejected once serving starts
// (Freeze). Existing tables, however, stay mutable under live traffic:
// ReplaceEngine atomically swaps a freshly built engine in (hot reload —
// in-flight queries finish on the old engine, which destructs when the last
// of them drops its shared_ptr), and Detach tombstones a table (resolves
// become kNotFound; the Entry itself is never destroyed, so Entry pointers
// stay valid for the registry's lifetime).
//
// Every accessor takes a mutex — uncontended and held for a name comparison
// or two, noise next to the milliseconds of homomorphic work behind each
// query — so the thread-safety analysis can check every access instead of
// trusting a freeze-then-read convention.
#ifndef SKNN_SERVE_TABLE_REGISTRY_H_
#define SKNN_SERVE_TABLE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "serve/qos/result_cache.h"

namespace sknn {

/// \brief Per-table admission counters. Atomics, written by the service's
/// connection handlers, snapshotted by the control plane.
struct TableCounters {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> in_flight{0};
};

class TableRegistry {
 public:
  struct Entry {
    std::string name;
    TableCounters counters;

    /// \brief The engine currently serving this table; nullptr once
    /// detached. Callers hold the returned shared_ptr for the duration of
    /// their query, so a concurrent ReplaceEngine/Detach never destroys an
    /// engine under them — the old engine drains and destructs when the
    /// last in-flight query drops its copy.
    std::shared_ptr<SknnEngine> engine() const {
      MutexLock lock(&mutex);
      return current;
    }
    /// \brief The build spec this table was registered (or last reloaded)
    /// with; "" when none was recorded. What a spec-less kReloadTable
    /// rebuilds from.
    std::string spec() const {
      MutexLock lock(&mutex);
      return spec_value;
    }
    bool detached() const {
      return detached_flag.load(std::memory_order_acquire);
    }

    mutable Mutex mutex;
    std::shared_ptr<SknnEngine> current GUARDED_BY(mutex);
    std::string spec_value GUARDED_BY(mutex);
    std::atomic<bool> detached_flag{false};

    /// This table's response cache (serve/qos/result_cache.h), invalidated
    /// by ReplaceEngine and Detach so no entry ever outlives the engine
    /// build it was computed against. Budget 0 disables it.
    ResultCache cache;
    /// QoS knobs (serve/qos/fair_admission.h), parsed from the table spec's
    /// weight=/rate=/burst= keys by tools/sknn_c1_server. Written only
    /// before QueryService::Start freezes the table set; read-only under
    /// traffic, so plain members suffice.
    uint32_t qos_weight = 1;
    double qos_rate = 0;
    double qos_burst = 0;
  };

  TableRegistry() = default;
  TableRegistry(const TableRegistry&) = delete;
  TableRegistry& operator=(const TableRegistry&) = delete;

  /// \brief Registers `engine` under `name`, taking ownership. Names must
  /// be non-empty, unique, at most 64 characters from [A-Za-z0-9._-].
  /// `spec`, when non-empty, records how to rebuild the engine (the
  /// kReloadTable default).
  Status Register(const std::string& name, std::unique_ptr<SknnEngine> engine,
                  const std::string& spec = "");
  /// \brief Non-owning registration; `engine` must outlive the registry
  /// (and every query started against it — hot reload of such a table keeps
  /// the caller's object alive but stops routing to it).
  Status Register(const std::string& name, SknnEngine* engine);

  /// \brief Rejects registration of further NEW tables — called by
  /// QueryService::Start. ReplaceEngine and Detach still work: the table
  /// SET is frozen, the tables themselves are not.
  void Freeze() {
    MutexLock lock(&mutex_);
    frozen_ = true;
  }

  /// \brief Hot reload: atomically routes `name` to `engine`. In-flight
  /// queries finish on the engine they resolved; the replaced engine
  /// destructs once the last of them completes. A detached table is revived.
  /// `spec`, when non-empty, becomes the recorded rebuild spec.
  Status ReplaceEngine(const std::string& name,
                       std::unique_ptr<SknnEngine> engine,
                       const std::string& spec = "");

  /// \brief Tombstones `name`: future resolves are kNotFound, in-flight
  /// queries finish undisturbed. The entry (and its counters) survives so
  /// Entry pointers stay valid; a later ReplaceEngine revives it.
  Status Detach(const std::string& name);

  /// \brief Resolves a wire table name: "" means THE sole (non-detached)
  /// table (an error when several are served — a multi-table client must
  /// say which), an unknown or detached name is kNotFound. Stable pointer
  /// for the registry's lifetime.
  Result<Entry*> Resolve(const std::string& name);

  /// \brief Exact-name lookup, including detached entries; nullptr when
  /// absent. ("" never matches.)
  Entry* Find(const std::string& name);

  /// \brief Non-detached table names, registration order.
  std::vector<std::string> names() const;
  /// \brief Count of non-detached tables.
  std::size_t size() const;

  /// \brief Every non-detached entry, registration order — the control
  /// plane's iteration. The pointers stay valid for the registry's
  /// lifetime; the snapshot itself is the caller's copy (handing out a
  /// reference to the guarded vector would escape the lock).
  std::vector<Entry*> snapshot() const;

  /// \brief Every entry INCLUDING detached ones, registration order — how
  /// QueryService::Start enumerates QoS principals: a table detached before
  /// serving starts can be revived by kReloadTable later and must already
  /// own an admission share when it is.
  std::vector<Entry*> snapshot_all() const;

 private:
  Status RegisterEntry(const std::string& name,
                       std::shared_ptr<SknnEngine> engine,
                       const std::string& spec);

  Entry* FindLocked(const std::string& name) REQUIRES(mutex_);

  mutable Mutex mutex_;
  bool frozen_ GUARDED_BY(mutex_) = false;
  /// unique_ptr elements: Entry addresses survive vector growth, so Resolve
  /// can hand out stable pointers.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

}  // namespace sknn

#endif  // SKNN_SERVE_TABLE_REGISTRY_H_
