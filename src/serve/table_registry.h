// TableRegistry — the named-table catalog behind a multi-table front end.
//
// One sknn_c1_server process may serve many independent encrypted tables:
// each registered entry is a complete SknnEngine — its own Paillier keys,
// its own database (or shard topology), its own C2 link — discovered by
// clients through the control plane (kListTables / kTableInfo) and targeted
// per query by the `table` field of the wire QueryRequest. This is the
// multi-tenant shape of "Secure k-NN as a Service" deployments: data owners
// share one serving deployment without sharing any cryptographic material.
//
// The registry also owns the per-table admission accounting
// (completed/failed/rejected/in-flight counters) that kServiceStats
// reports: admission itself stays service-wide (one budget protects one
// process), attribution is per table.
//
// Lifecycle: register every table BEFORE handing the registry to a
// QueryService; registration is rejected once serving starts (Freeze).
// Every accessor takes the registry mutex — it is uncontended and held for
// a name comparison or two, noise next to the milliseconds of homomorphic
// work behind each query — so the thread-safety analysis can check every
// entries_ access instead of trusting a freeze-then-read convention.
#ifndef SKNN_SERVE_TABLE_REGISTRY_H_
#define SKNN_SERVE_TABLE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"

namespace sknn {

/// \brief Per-table admission counters. Atomics, written by the service's
/// connection handlers, snapshotted by the control plane.
struct TableCounters {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> in_flight{0};
};

class TableRegistry {
 public:
  struct Entry {
    std::string name;
    /// Always valid; `owned` below controls lifetime only.
    SknnEngine* engine = nullptr;
    std::unique_ptr<SknnEngine> owned;
    TableCounters counters;
  };

  TableRegistry() = default;
  TableRegistry(const TableRegistry&) = delete;
  TableRegistry& operator=(const TableRegistry&) = delete;

  /// \brief Registers `engine` under `name`, taking ownership. Names must
  /// be non-empty, unique, at most 64 characters from [A-Za-z0-9._-].
  Status Register(const std::string& name,
                  std::unique_ptr<SknnEngine> engine);
  /// \brief Non-owning registration; `engine` must outlive the registry.
  Status Register(const std::string& name, SknnEngine* engine);

  /// \brief Rejects further registration — called by QueryService::Start,
  /// after which the table set is immutable for the registry's lifetime.
  void Freeze() {
    MutexLock lock(&mutex_);
    frozen_ = true;
  }

  /// \brief Resolves a wire table name: "" means THE sole table (an error
  /// when several are served — a multi-table client must say which), an
  /// unknown name is kNotFound. Stable pointer for the registry's lifetime.
  Result<Entry*> Resolve(const std::string& name);

  /// \brief Exact-name lookup; nullptr when absent. ("" never matches.)
  Entry* Find(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

  /// \brief Every entry, registration order — the control plane's
  /// iteration. The pointers stay valid for the registry's lifetime; the
  /// snapshot itself is the caller's copy (handing out a reference to the
  /// guarded vector would escape the lock).
  std::vector<Entry*> snapshot() const;

 private:
  Status RegisterEntry(const std::string& name, SknnEngine* engine,
                       std::unique_ptr<SknnEngine> owned);

  Entry* FindLocked(const std::string& name) REQUIRES(mutex_);

  mutable Mutex mutex_;
  bool frozen_ GUARDED_BY(mutex_) = false;
  /// unique_ptr elements: Entry addresses survive vector growth, so Resolve
  /// can hand out stable pointers.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

}  // namespace sknn

#endif  // SKNN_SERVE_TABLE_REGISTRY_H_
