// ShardWorker — the C1 shard worker service behind tools/sknn_c1_shard.
//
// One worker hosts one slice of Epk(T) (cut from the full database along
// the shard manifest), keeps its own link to the C2 key holder, and answers
// the coordinator's frames (net/shard_wire.h):
//
//   kShardPing  -> its geometry (shard index, manifest, db shape), so a
//                  misassembled worker set is rejected at connect time;
//   kShardQuery -> the distance + local-top-k stage over its slice, run
//                  with the query id the coordinator assigned (C2 keeps ONE
//                  per-query ledger entry across coordinator and workers),
//                  answered with min(k, slice size) candidates plus the
//                  stage's wall time, C2 traffic and C1-side Paillier ops.
//
// Worker-side failures are answered as kShardError frames carrying a real
// Status — only a dead worker (no answer at all) becomes kUnavailable at
// the coordinator. The class is transport-agnostic: the tool serves it over
// TCP RpcServers, tests over in-memory channels.
#ifndef SKNN_SERVE_SHARD_WORKER_H_
#define SKNN_SERVE_SHARD_WORKER_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/clustering.h"
#include "core/sharding.h"
#include "net/rpc.h"
#include "net/shard_wire.h"

namespace sknn {

class ShardWorker {
 public:
  struct Options {
    /// Worker threads for this shard's local homomorphic fan-out; also the
    /// chunk fan-out for scalar-mode RPC rounds.
    std::size_t threads = 1;
    /// Mirrors SknnEngine::Options — one message per protocol stage.
    bool vectorized_rounds = true;
    bool verify_sbd = true;
    /// Precomputed-randomizer pool for this worker's encryptions.
    bool randomizer_pool = true;
    std::size_t randomizer_pool_capacity = 4096;
  };

  /// \brief Cuts shard `shard_index` of `manifest` out of the full
  /// database and connects the stage driver to C2 via `c2_link` (fails
  /// fast if the link is dead). The full Epk(T) is released after slicing.
  /// Rejects ShardScheme::kByCluster manifests — their record placement is
  /// data-dependent; use the ClusterManifest overload.
  static Result<std::unique_ptr<ShardWorker>> Create(
      const PaillierPublicKey& pk, const EncryptedDatabase& db,
      const ShardManifest& manifest, std::size_t shard_index,
      std::unique_ptr<Endpoint> c2_link, const Options& options);

  /// \brief Cluster-partitioned worker (sknn_c1_shard --clusters): hosts the
  /// records of cluster `shard_index` under a ShardScheme::kByCluster
  /// manifest with one shard per cluster, so a clustered front end can
  /// prune whole workers out of a query's fan-out.
  static Result<std::unique_ptr<ShardWorker>> Create(
      const PaillierPublicKey& pk, const EncryptedDatabase& db,
      const ClusterManifest& clusters, std::size_t shard_index,
      std::unique_ptr<Endpoint> c2_link, const Options& options);

  /// \brief RPC dispatch entry point (plug into an RpcServer); thread-safe
  /// — concurrent queries run with independent meters over the shared C2
  /// client.
  Result<Message> Handle(const Message& request);

  const ShardGeometry& geometry() const { return geometry_; }
  std::size_t shard_records() const { return slice_.db.num_records(); }

 private:
  ShardWorker() = default;

  /// Shared tail of both Create overloads: `global_indices` names the
  /// records this worker hosts, in ascending global order.
  static Result<std::unique_ptr<ShardWorker>> CreateSliced(
      const PaillierPublicKey& pk, const EncryptedDatabase& db,
      const ShardManifest& manifest, std::size_t shard_index,
      std::vector<std::size_t> global_indices,
      std::unique_ptr<Endpoint> c2_link, const Options& options);

  Message HandleShardQuery(const Message& request);

  Options options_;
  PaillierPublicKey pk_;
  ShardSlice slice_;
  ShardGeometry geometry_;
  std::unique_ptr<RpcClient> c2_client_;
  std::unique_ptr<ThreadPool> pool_;
  /// Declared after pk_ users; destroyed first once queries drained.
  std::unique_ptr<RandomizerPool> rand_pool_;
};

}  // namespace sknn

#endif  // SKNN_SERVE_SHARD_WORKER_H_
