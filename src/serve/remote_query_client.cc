#include "serve/remote_query_client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "bigint/random.h"
#include "net/socket.h"
#include "proto/opcodes.h"

namespace sknn {
namespace {

/// How long the client's own RPC timer waits past a query's deadline_ms
/// before declaring the front end itself hung. The server normally answers
/// a blown deadline with a TYPED kDeadlineExceeded well inside this.
constexpr std::chrono::milliseconds kDeadlineGrace{500};

/// Bounds the hello handshake so a hung endpoint rotates instead of
/// wedging the first call forever.
constexpr std::chrono::milliseconds kHelloTimeout{5000};

Status ParseHostPort(const std::string& addr, std::string* host,
                     uint16_t* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) {
    return Status::InvalidArgument("RemoteQueryClient: endpoint '" + addr +
                                   "' is not host:port");
  }
  unsigned long parsed = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    const char c = addr[i];
    if (c < '0' || c > '9') parsed = 66000;  // force the range error below
    if (parsed <= 65535) parsed = parsed * 10 + static_cast<unsigned>(c - '0');
  }
  if (parsed == 0 || parsed > 65535) {
    return Status::InvalidArgument("RemoteQueryClient: bad port in endpoint '" +
                                   addr + "'");
  }
  *host = addr.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

}  // namespace

std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy, int attempt,
                                       double uniform01) {
  if (attempt < 1) attempt = 1;
  uniform01 = std::clamp(uniform01, 0.0, 1.0);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  // A nonsensical policy (negative or zero initial backoff — e.g. a
  // mis-parsed config) must never produce a negative sleep or a zero-wait
  // busy loop: floor the base at 1 ms.
  const double initial =
      std::max(1.0, static_cast<double>(policy.initial_backoff.count()));
  const double max_backoff =
      std::max(1.0, static_cast<double>(policy.max_backoff.count()));
  // Exponential growth without overflow: cap the shift, then the value.
  // All arithmetic in double and clamped BEFORE the int64 conversion — a
  // huge max_backoff (e.g. milliseconds::max()) would otherwise make the
  // double→int64 cast undefined and the "capped" wait negative.
  const int shift = std::min(attempt - 1, 20);
  double backoff = initial * static_cast<double>(1u << shift);
  backoff = std::min(backoff, max_backoff);
  // Decorrelate: the bottom (1 - jitter) share is guaranteed, the top
  // jitter share is uniformly random — synchronized clients spread out
  // instead of re-arriving at the admission gate in lockstep.
  double slept = backoff * (1.0 - jitter) + backoff * jitter * uniform01;
  constexpr double kMaxSleepMs = 9.0e15;  // < int64 range, ~285k years
  slept = std::clamp(slept, 1.0, kMaxSleepMs);
  return std::chrono::milliseconds(static_cast<int64_t>(slept));
}

bool RetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

RemoteQueryClient::RemoteQueryClient(std::unique_ptr<Endpoint> link) {
  // A null link means "no connection yet" — the endpoint-list Connect path,
  // which fills endpoints_ and lets EnsureLink dial.
  if (link == nullptr) return;
  MutexLock lock(&mutex_);
  rpc_ = std::make_shared<RpcClient>(std::move(link));
  InstallNoteHandler(rpc_.get());
}

Result<std::unique_ptr<RemoteQueryClient>> RemoteQueryClient::Connect(
    const std::string& host, uint16_t port) {
  return Connect(std::vector<std::string>{host + ":" + std::to_string(port)});
}

Result<std::unique_ptr<RemoteQueryClient>> RemoteQueryClient::Connect(
    const std::vector<std::string>& endpoints) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("RemoteQueryClient: no endpoints given");
  }
  // Validate every address up front — a typo in the THIRD endpoint should
  // fail now, not during the failover that was supposed to save the query.
  for (const std::string& addr : endpoints) {
    std::string host;
    uint16_t port = 0;
    SKNN_RETURN_NOT_OK(ParseHostPort(addr, &host, &port));
  }
  // The first dial happens here so Connect keeps its contract of returning
  // a reachable client; later redials happen lazily inside EnsureLink.
  auto client = std::make_unique<RemoteQueryClient>(nullptr);
  client->endpoints_ = endpoints;
  SKNN_RETURN_NOT_OK(client->EnsureLink().status());
  return client;
}

void RemoteQueryClient::Close() {
  std::shared_ptr<RpcClient> rpc;
  {
    MutexLock lock(&mutex_);
    closed_ = true;
    rpc = std::move(rpc_);
    hello_done_ = false;
    auth_done_ = false;
  }
  if (rpc != nullptr) rpc->Shutdown();
}

void RemoteQueryClient::set_table_changed_handler(TableChangedHandler handler) {
  {
    MutexLock lock(&handler_mutex_);
    table_changed_ = std::move(handler);
  }
  // The installed RpcClient-level handler reads table_changed_ at note
  // time, so a live link picks the new handler up without reinstalling.
}

void RemoteQueryClient::InstallNoteHandler(RpcClient* rpc) {
  if (rpc == nullptr) return;
  rpc->SetNoteHandler([this](const Message& note) {
    if (note.type != FrontendOpCode(FrontendOp::kTableChanged)) return;
    Result<TableChangedNote> decoded = DecodeTableChanged(note);
    if (!decoded.ok()) return;
    TableChangedHandler handler;
    {
      MutexLock lock(&handler_mutex_);
      handler = table_changed_;
    }
    if (handler) handler(*decoded);
  });
}

Result<std::shared_ptr<RpcClient>> RemoteQueryClient::EnsureLink() {
  MutexLock lock(&mutex_);
  if (closed_) {
    return Status::FailedPrecondition("RemoteQueryClient: closed");
  }
  if (rpc_ == nullptr) {
    if (endpoints_.empty()) {
      return Status::Unavailable(
          "RemoteQueryClient: link is down and no endpoints were given to "
          "redial");
    }
    Status last = Status::Unavailable("RemoteQueryClient: no endpoints");
    for (std::size_t tried = 0; tried < endpoints_.size(); ++tried) {
      const std::string& addr = endpoints_[endpoint_idx_ % endpoints_.size()];
      std::string host;
      uint16_t port = 0;
      if (Status parsed = ParseHostPort(addr, &host, &port); !parsed.ok()) {
        last = parsed;
        ++endpoint_idx_;
        continue;
      }
      auto link = ConnectTcp(host, port);
      if (!link.ok()) {
        last = Status::Unavailable("RemoteQueryClient: cannot reach " + addr +
                                   ": " + link.status().message());
        ++endpoint_idx_;
        continue;
      }
      rpc_ = std::make_shared<RpcClient>(std::move(link).value());
      InstallNoteHandler(rpc_.get());
      break;
    }
    if (rpc_ == nullptr) return last;
  }
  if (!hello_done_) {
    HelloInfo hello;
    hello.revision = kProtocolRevision;
    hello.features = kSupportedFeatures;
    Result<Message> reply = rpc_->Call(EncodeHello(hello), kHelloTimeout);
    if (!reply.ok()) {
      // Handshake transport failure: this endpoint is dead or hung. Drop
      // the link and advance, so the CALLER's next attempt dials the next
      // endpoint rather than re-helloing a corpse.
      rpc_->Shutdown();
      rpc_ = nullptr;
      ++endpoint_idx_;
      return reply.status();
    }
    if (reply->type == FrontendOpCode(FrontendOp::kQueryError)) {
      // A typed rejection (revision mismatch) is the server's answer, not a
      // link failure — surfacing it beats silently querying a neighbor that
      // would say the same thing.
      return DecodeQueryError(*reply);
    }
    SKNN_ASSIGN_OR_RETURN(server_hello_, DecodeHelloAck(*reply));
    hello_done_ = true;
  }
  if (!api_key_.empty() && !auth_done_) {
    // The credential is re-presented after EVERY fresh hello — a failover
    // landed this session on a front end that has never seen it.
    Result<Message> reply =
        rpc_->Call(EncodeAuthenticateRequest(api_key_), kHelloTimeout);
    if (!reply.ok()) {
      rpc_->Shutdown();
      rpc_ = nullptr;
      hello_done_ = false;
      ++endpoint_idx_;
      return reply.status();
    }
    if (reply->type == FrontendOpCode(FrontendOp::kQueryError)) {
      // Typed rejection (kPermissionDenied): the KEY is wrong, and every
      // equivalent front end will say the same — surface it, don't rotate.
      return DecodeQueryError(*reply);
    }
    SKNN_ASSIGN_OR_RETURN(key_id_, DecodeAuthAck(*reply));
    auth_done_ = true;
  }
  return rpc_;
}

void RemoteQueryClient::set_api_key(std::string key) {
  MutexLock lock(&mutex_);
  api_key_ = std::move(key);
  // Force a (re)presentation on the next call even if the session already
  // helloed without a key.
  auth_done_ = false;
}

Result<std::string> RemoteQueryClient::AuthenticatedKeyId() {
  SKNN_RETURN_NOT_OK(EnsureLink().status());
  MutexLock lock(&mutex_);
  return key_id_;
}

void RemoteQueryClient::DropLink(const std::shared_ptr<RpcClient>& failed) {
  MutexLock lock(&mutex_);
  if (rpc_ != failed) return;  // another thread already failed over
  rpc_ = nullptr;
  hello_done_ = false;
  auth_done_ = false;
  ++endpoint_idx_;
}

void RemoteQueryClient::RotateEndpoint() {
  std::shared_ptr<RpcClient> dropped;
  {
    MutexLock lock(&mutex_);
    if (endpoints_.size() < 2) return;
    dropped = std::move(rpc_);
    hello_done_ = false;
    auth_done_ = false;
    ++endpoint_idx_;
  }
  if (dropped != nullptr) dropped->Shutdown();
}

Result<HelloInfo> RemoteQueryClient::Hello() {
  SKNN_RETURN_NOT_OK(EnsureLink().status());
  MutexLock lock(&mutex_);
  return server_hello_;
}

Result<Message> RemoteQueryClient::Call(const Message& request,
                                        std::chrono::milliseconds timeout) {
  // One dial per configured endpoint (at least one attempt for the
  // wrapped-link constructor). Re-sending after a transport failure is
  // safe: answers are a pure function of (table, query, k).
  const std::size_t attempts = std::max<std::size_t>(endpoints_.size(), 1);
  Status last = Status::Unavailable("RemoteQueryClient: no attempt ran");
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    Result<std::shared_ptr<RpcClient>> rpc = EnsureLink();
    if (!rpc.ok()) {
      last = rpc.status();
      // EnsureLink already rotated past dead endpoints; a non-transport
      // error (closed client, typed hello rejection) will repeat — stop.
      if (last.code() != StatusCode::kUnavailable &&
          last.code() != StatusCode::kDeadlineExceeded) {
        return last;
      }
      continue;
    }
    Result<Message> reply = (*rpc)->Call(request, timeout);
    if (!reply.ok()) {
      DropLink(*rpc);
      last = reply.status();
      continue;
    }
    if (reply->type == FrontendOpCode(FrontendOp::kQueryError)) {
      return DecodeQueryError(*reply);
    }
    if (reply->type == OpCode(Op::kError)) {
      // Transport-level error frame (handler crash path of the RPC server).
      return Status::ProtocolError("front end error: " +
                                   std::string(reply->aux.begin(),
                                               reply->aux.end()));
    }
    return reply;
  }
  return last;
}

Result<QueryResponse> RemoteQueryClient::Query(const QueryRequest& request) {
  std::chrono::milliseconds timeout{0};
  if (request.deadline_ms > 0) {
    timeout = std::chrono::milliseconds(request.deadline_ms) + kDeadlineGrace;
  }
  SKNN_ASSIGN_OR_RETURN(Message reply,
                        Call(EncodeQueryRequest(request), timeout));
  return DecodeQueryResponse(reply);
}

Result<QueryResponse> RemoteQueryClient::QueryWithRetry(
    const QueryRequest& request, const RetryPolicy& policy) {
  const auto started = std::chrono::steady_clock::now();
  const int attempts = std::max(policy.max_attempts, 1);
  // A client holding a replica list retries worker-loss errors by default:
  // the rotation below is exactly what the list was configured for.
  const bool multi_endpoint = endpoints_.size() > 1;
  const bool retry_unavailable = policy.retry_unavailable || multi_endpoint;
  Result<QueryResponse> response = Status::Internal("unset");
  for (int attempt = 1;; ++attempt) {
    response = Query(request);
    if (response.ok()) return response;
    const StatusCode code = response.status().code();
    // Fail fast on everything a retry cannot fix — kInvalidArgument,
    // kNotFound, kPermissionDenied and friends reproduce verbatim on every
    // re-send, so burning attempts (and sleeps) on them only delays the
    // caller's real answer. RetryableStatusCode is the single matrix.
    if (!RetryableStatusCode(code)) return response;
    const bool worker_loss = code != StatusCode::kResourceExhausted;
    const bool retryable = !worker_loss || retry_unavailable;
    if (!retryable || attempt >= attempts) return response;
    if (worker_loss && multi_endpoint) {
      // The front end (or its worker fleet) failed this query — try the
      // next front end rather than the same one again.
      RotateEndpoint();
    }
    const double uniform01 =
        static_cast<double>(Random::ThreadLocal().UniformUint64(1u << 20)) /
        static_cast<double>(1u << 20);
    const std::chrono::milliseconds sleep =
        RetryBackoff(policy, attempt, uniform01);
    if (policy.max_elapsed.count() > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started);
      // Give up rather than start a sleep that cannot end in time: the last
      // error (a retry signal) is still the honest answer.
      if (elapsed + sleep > policy.max_elapsed) return response;
    }
    std::this_thread::sleep_for(sleep);
  }
}

Result<std::vector<std::string>> RemoteQueryClient::ListTables() {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeListTablesRequest()));
  return DecodeTableList(reply);
}

Result<TableInfoReply> RemoteQueryClient::TableInfo(const std::string& table) {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeTableInfoRequest(table)));
  return DecodeTableInfoReply(reply);
}

Result<ServiceStatsReply> RemoteQueryClient::ServiceStats() {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeServiceStatsRequest()));
  return DecodeServiceStatsReply(reply);
}

Result<HealthReply> RemoteQueryClient::Health() {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeHealthRequest()));
  return DecodeHealthReply(reply);
}

Result<std::string> RemoteQueryClient::ReloadTable(const std::string& table,
                                                   const std::string& spec) {
  ReloadTableRequest request;
  request.table = table;
  request.spec = spec;
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeReloadTableRequest(request)));
  return DecodeAdminAck(reply);
}

Result<std::string> RemoteQueryClient::DetachTable(const std::string& table) {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeDetachTableRequest(table)));
  return DecodeAdminAck(reply);
}

}  // namespace sknn
