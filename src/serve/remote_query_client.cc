#include "serve/remote_query_client.h"

#include <algorithm>
#include <thread>

#include "bigint/random.h"
#include "net/socket.h"
#include "proto/opcodes.h"

namespace sknn {

std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy, int attempt,
                                       double uniform01) {
  if (attempt < 1) attempt = 1;
  uniform01 = std::clamp(uniform01, 0.0, 1.0);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  // Exponential growth without overflow: cap the shift, then the value.
  const int shift = std::min(attempt - 1, 20);
  double backoff = static_cast<double>(policy.initial_backoff.count()) *
                   static_cast<double>(1u << shift);
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff.count()));
  // Decorrelate: the bottom (1 - jitter) share is guaranteed, the top
  // jitter share is uniformly random — synchronized clients spread out
  // instead of re-arriving at the admission gate in lockstep.
  const double slept = backoff * (1.0 - jitter) + backoff * jitter * uniform01;
  return std::chrono::milliseconds(static_cast<int64_t>(slept));
}

Result<std::unique_ptr<RemoteQueryClient>> RemoteQueryClient::Connect(
    const std::string& host, uint16_t port) {
  SKNN_ASSIGN_OR_RETURN(std::unique_ptr<SocketEndpoint> link,
                        ConnectTcp(host, port));
  return std::make_unique<RemoteQueryClient>(std::move(link));
}

Result<HelloInfo> RemoteQueryClient::Hello() {
  SKNN_RETURN_NOT_OK(EnsureHello());
  MutexLock lock(&hello_mutex_);
  return server_hello_;
}

Status RemoteQueryClient::EnsureHello() {
  MutexLock lock(&hello_mutex_);
  if (hello_done_) return Status::OK();
  HelloInfo hello;
  hello.revision = kProtocolRevision;
  hello.features = kSupportedFeatures;
  SKNN_ASSIGN_OR_RETURN(Message reply, rpc_.Call(EncodeHello(hello)));
  if (reply.type == FrontendOpCode(FrontendOp::kQueryError)) {
    return DecodeQueryError(reply);
  }
  SKNN_ASSIGN_OR_RETURN(server_hello_, DecodeHelloAck(reply));
  hello_done_ = true;
  return Status::OK();
}

Result<Message> RemoteQueryClient::Call(Message request) {
  SKNN_RETURN_NOT_OK(EnsureHello());
  SKNN_ASSIGN_OR_RETURN(Message reply, rpc_.Call(std::move(request)));
  if (reply.type == FrontendOpCode(FrontendOp::kQueryError)) {
    return DecodeQueryError(reply);
  }
  if (reply.type == OpCode(Op::kError)) {
    // Transport-level error frame (handler crash path of the RPC server).
    return Status::ProtocolError("front end error: " +
                                 std::string(reply.aux.begin(),
                                             reply.aux.end()));
  }
  return reply;
}

Result<QueryResponse> RemoteQueryClient::Query(const QueryRequest& request) {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeQueryRequest(request)));
  return DecodeQueryResponse(reply);
}

Result<QueryResponse> RemoteQueryClient::QueryWithRetry(
    const QueryRequest& request, const RetryPolicy& policy) {
  const auto started = std::chrono::steady_clock::now();
  const int attempts = std::max(policy.max_attempts, 1);
  Result<QueryResponse> response = Status::Internal("unset");
  for (int attempt = 1;; ++attempt) {
    response = Query(request);
    if (response.ok()) return response;
    const StatusCode code = response.status().code();
    const bool retryable =
        code == StatusCode::kResourceExhausted ||
        (policy.retry_unavailable && code == StatusCode::kUnavailable);
    if (!retryable || attempt >= attempts) return response;
    const double uniform01 =
        static_cast<double>(Random::ThreadLocal().UniformUint64(1u << 20)) /
        static_cast<double>(1u << 20);
    const std::chrono::milliseconds sleep =
        RetryBackoff(policy, attempt, uniform01);
    if (policy.max_elapsed.count() > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started);
      // Give up rather than start a sleep that cannot end in time: the last
      // error (a retry signal) is still the honest answer.
      if (elapsed + sleep > policy.max_elapsed) return response;
    }
    std::this_thread::sleep_for(sleep);
  }
}

Result<std::vector<std::string>> RemoteQueryClient::ListTables() {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeListTablesRequest()));
  return DecodeTableList(reply);
}

Result<TableInfoReply> RemoteQueryClient::TableInfo(const std::string& table) {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeTableInfoRequest(table)));
  return DecodeTableInfoReply(reply);
}

Result<ServiceStatsReply> RemoteQueryClient::ServiceStats() {
  SKNN_ASSIGN_OR_RETURN(Message reply, Call(EncodeServiceStatsRequest()));
  return DecodeServiceStatsReply(reply);
}

}  // namespace sknn
