#include "serve/remote_query_client.h"

#include "net/query_wire.h"
#include "net/socket.h"
#include "proto/opcodes.h"

namespace sknn {

Result<std::unique_ptr<RemoteQueryClient>> RemoteQueryClient::Connect(
    const std::string& host, uint16_t port) {
  SKNN_ASSIGN_OR_RETURN(std::unique_ptr<SocketEndpoint> link,
                        ConnectTcp(host, port));
  return std::make_unique<RemoteQueryClient>(std::move(link));
}

Result<QueryResponse> RemoteQueryClient::Query(const QueryRequest& request) {
  SKNN_ASSIGN_OR_RETURN(Message reply, rpc_.Call(EncodeQueryRequest(request)));
  if (reply.type == FrontendOpCode(FrontendOp::kQueryError)) {
    return DecodeQueryError(reply);
  }
  if (reply.type == OpCode(Op::kError)) {
    // Transport-level error frame (handler crash path of the RPC server).
    return Status::ProtocolError("front end error: " +
                                 std::string(reply.aux.begin(),
                                             reply.aux.end()));
  }
  return DecodeQueryResponse(reply);
}

}  // namespace sknn
