// QueryService — the standing C1 query front end.
//
// Accepts any number of thin-client connections (serve/remote_query_client.h
// or any speaker of net/query_wire.h) on one TCP port. Every session starts
// with a kHello/kHelloAck negotiation — a client speaking an unsupported
// protocol revision, or sending anything else before its hello, gets a
// typed kQueryError (FailedPrecondition), never silent garbage. After the
// handshake a session may query any of the tables the service hosts
// (serve/table_registry.h; the wire QueryRequest names one — empty = the
// sole table, the pre-multi-table client shape) and introspect the
// deployment through the control plane: kListTables, kTableInfo (geometry +
// shard topology per table) and kServiceStats (per-table admission
// counters, in-flight, uptime).
//
// Queries are validated up front, then admitted under a bounded in-flight
// budget — rejected with StatusCode::kResourceExhausted once the budget is
// full, so overload surfaces as an explicit retry signal instead of an
// unbounded queue — and pipelined through the target table's
// SknnEngine::Submit, where up to Options::c1_threads of them execute
// concurrently over that engine's C1 pool and correlation-id RPC demux.
//
// Many tables, many clients, one process: this is the multi-tenant serving
// shape (each table has its own Paillier keys, database and shard
// topology; tenants share nothing but the port) and the contract every
// later scaling step (per-table caching, replication, resharding) builds
// on. docs/API.md specifies the wire contract; docs/DEPLOY.md the
// deployment.
#ifndef SKNN_SERVE_QUERY_SERVICE_H_
#define SKNN_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "net/query_wire.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "serve/qos/api_key_auth.h"
#include "serve/qos/fair_admission.h"
#include "serve/table_registry.h"

namespace sknn {

class QueryService {
 public:
  struct Options {
    /// Admission budget: how many decoded requests may be inside the
    /// engines (scheduler queues + executing) at once, across ALL tables.
    /// Requests arriving beyond it are rejected with kResourceExhausted —
    /// backpressure the thin client handles by retrying — instead of
    /// queueing without bound.
    std::size_t max_in_flight = 8;
    /// RPC worker threads per client connection (1 = requests on one
    /// connection are answered one at a time; clients that pipeline many
    /// concurrent calls over a single connection need more).
    std::size_t connection_workers = 1;
    /// Result-cache byte budget applied to EVERY table at Start (appended
    /// field, aggregate-init order). 0 — the default — leaves each table's
    /// own budget alone, which for an unconfigured entry means DISABLED:
    /// an un-opted-in service runs every query through the full protocol,
    /// exactly like before revision 6. tools/sknn_c1_server instead
    /// configures budgets per table from the spec's cache= key and leaves
    /// this 0.
    std::size_t cache_bytes = 0;
  };

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t queries_completed = 0;
    uint64_t queries_failed = 0;    // engine/validation/decode errors
    uint64_t queries_rejected = 0;  // backpressure (kResourceExhausted)
    uint64_t hello_rejected = 0;    // version mismatch / missing hello
    uint64_t auth_rejected = 0;     // bad key / query without kAuthenticate
  };

  /// \brief The multi-table front end: serves every table registered in
  /// `registry`, which must outlive the service and to which Start applies
  /// TableRegistry::Freeze. Construction does not bind.
  QueryService(TableRegistry* registry, const Options& options);

  /// \brief The single-table convenience used by tests and benches: wraps
  /// `engine` (not owned, must outlive the service) in an internal registry
  /// as table "default".
  QueryService(SknnEngine* engine, const Options& options);

  ~QueryService();

  /// \brief The sharded construction path of the front end: builds the
  /// engine a sharded `sknn_c1_server --shards s [--shard-workers ...]`
  /// serves, with the same wire contract as the unsharded one.
  ///
  /// With `worker_addrs` empty, Epk(T) is partitioned into `shards`
  /// in-process shards (SknnEngine::Options::shards) driven over `c2_link`.
  /// Otherwise each "host:port" entry is one standing sknn_c1_shard worker:
  /// the engine is assembled via SknnEngine::CreateWithShardWorkers — `db`
  /// may then be empty, the geometry comes from the workers, and the list
  /// must cover at least `shards` workers (0 = take the count from the
  /// workers). SEVERAL workers may serve the same shard index: they become
  /// that shard's replicas, queries fail over between them, and the
  /// coordinator redials a dead worker at its listed address.
  static Result<std::unique_ptr<SknnEngine>> CreateShardedEngine(
      const PaillierPublicKey& pk, EncryptedDatabase db,
      std::unique_ptr<Endpoint> c2_link, SknnEngine::Options options,
      std::size_t shards, ShardScheme scheme,
      const std::vector<std::string>& worker_addrs);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// \brief Binds `port` (0 = ephemeral; see port()) and starts accepting.
  Status Start(uint16_t port);

  /// \brief The bound port, valid after a successful Start.
  uint16_t port() const { return port_; }

  /// \brief Stops accepting, closes every client link, waits for in-flight
  /// handlers. Idempotent; also run by the destructor.
  void Shutdown();

  Stats stats() const;

  /// \brief The control plane's service-wide snapshot (also what a
  /// kServiceStats frame answers): uptime, per-table counters, in-flight.
  ServiceStatsReply ServiceStatsSnapshot() const;

  /// \brief The control plane's replica-liveness snapshot (also what a
  /// kHealth frame answers): per table, per shard, per replica.
  HealthReply HealthSnapshot() const;

  /// \brief Builds a replacement engine for table `name` from `spec` (the
  /// frame's, or the registered one when the frame's is empty). Installed
  /// by the host process — tools/sknn_c1_server knows how its tables were
  /// built — and invoked by kReloadTable OUTSIDE every service lock, so a
  /// multi-second load never stalls serving. Without a loader, kReloadTable
  /// answers kFailedPrecondition.
  using TableLoader = std::function<Result<std::unique_ptr<SknnEngine>>(
      const std::string& name, const std::string& spec)>;
  void set_table_loader(TableLoader loader);

  /// \brief Enables API-key authentication (serve/qos/api_key_auth.h):
  /// every session must kAuthenticate with a registered key before its
  /// kQuery frames are served; the control plane stays open. Must be
  /// called before Start; null keeps the service open (the default).
  void set_api_key_auth(std::unique_ptr<ApiKeyAuth> auth);

  /// \brief Connections whose client has not yet disconnected. A graceful
  /// drain (tools/sknn_c1_server --queries) waits for this to reach zero
  /// before Shutdown: queries_completed is counted when the handler
  /// finishes, a hair before the response frame hits the wire, so closing
  /// on the counter alone could cut off the last client's answer.
  std::size_t active_sessions() const;

 private:
  /// Per-connection negotiation state, captured by that connection's
  /// handler. The hello gate is per SESSION: one client negotiating does
  /// not admit its neighbors.
  struct SessionState {
    std::atomic<bool> hello_done{false};
    /// Index into the ApiKeyAuth registry once this session authenticated;
    /// -1 before (and forever, on an auth-less server).
    std::atomic<int64_t> key_index{-1};
  };

  void AcceptLoop();
  Result<Message> HandleFrame(SessionState& session, const Message& request);
  Message HandleHello(SessionState& session, const Message& request);
  Message HandleAuthenticate(SessionState& session, const Message& request);
  Message HandleQuery(SessionState& session, QueryRequest request);
  Message HandleTableInfo(const Message& request);
  Message HandleReloadTable(const Message& request);
  Message HandleDetachTable(const Message& request);
  Message Reject(const Status& status, uint64_t Stats::* counter);
  /// \brief Pushes a kTableChanged note (correlation id 0) to every live
  /// session, so clients mid-conversation learn a table changed under them.
  void BroadcastTableChanged(const TableChangedNote& note);

  TableRegistry* registry_;
  /// Backs the single-engine constructor; null when the caller owns the
  /// registry.
  std::unique_ptr<TableRegistry> owned_registry_;
  Options options_;
  std::optional<TcpListener> listener_;
  uint16_t port_ = 0;
  std::chrono::steady_clock::time_point started_at_{};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> in_flight_{0};
  /// Weighted fair admission over the tables (serve/qos/fair_admission.h),
  /// built by Start from the frozen table set's QoS knobs; replaces the
  /// old single CAS-loop budget. Read-only pointer after Start.
  std::unique_ptr<FairAdmission> table_admission_;
  /// Entry* -> principal index in table_admission_, fixed at Start.
  std::unordered_map<const TableRegistry::Entry*, std::size_t>
      table_principal_;
  /// Per-key fair admission, present only when auth is enabled: a session's
  /// key bounds its slots by the key file's weights, so tenants sharing a
  /// table still get weighted fair service.
  std::unique_ptr<FairAdmission> key_admission_;
  std::unique_ptr<ApiKeyAuth> auth_;
  mutable Mutex mutex_;  // guards sessions_ and stats_
  std::vector<std::unique_ptr<RpcServer>> sessions_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
  mutable Mutex loader_mutex_;
  TableLoader table_loader_ GUARDED_BY(loader_mutex_);
  /// Serializes Shutdown against itself: a second caller blocks until the
  /// first finishes instead of racing it to accept_thread_.join() (joining
  /// one std::thread from two threads is undefined behavior). Ordered after
  /// mutex_ in no lock order — Shutdown never holds both.
  Mutex shutdown_mutex_ ACQUIRED_BEFORE(mutex_);
  bool shutdown_done_ GUARDED_BY(shutdown_mutex_) = false;
};

}  // namespace sknn

#endif  // SKNN_SERVE_QUERY_SERVICE_H_
