// Synthetic dataset generation — the paper's evaluation (Section 5) runs on
// random synthetic tables so every parameter (n, m, domain) is controllable.
// A clustered generator is also provided for the kNN-classification example,
// where uniform data would make neighborhoods meaningless.
#ifndef SKNN_DATA_SYNTHETIC_H_
#define SKNN_DATA_SYNTHETIC_H_

#include <cstdint>

#include "core/types.h"

namespace sknn {

/// \brief n x m table with attributes uniform in [0, max_value].
/// Deterministic in `seed`.
PlainTable GenerateUniformTable(std::size_t n, std::size_t m,
                                int64_t max_value, uint64_t seed);

/// \brief A random query record matching `GenerateUniformTable`'s domain.
PlainRecord GenerateUniformQuery(std::size_t m, int64_t max_value,
                                 uint64_t seed);

struct ClusterSpec {
  std::size_t num_clusters = 4;
  /// Max absolute per-attribute offset of a point from its centroid.
  int64_t spread = 2;
};

/// \brief Clustered table: centroids uniform in [spread, max_value-spread],
/// points jittered around them (clamped to the domain). The cluster id of
/// row i is i % num_clusters — handy as a classification label.
PlainTable GenerateClusteredTable(std::size_t n, std::size_t m,
                                  int64_t max_value, const ClusterSpec& spec,
                                  uint64_t seed);

/// \brief Smallest `attr_bits` such that max_value < 2^attr_bits.
unsigned BitsForMaxValue(int64_t max_value);

/// \brief Largest attribute value allowed when the squared-distance domain
/// must fit in `l` bits for m-attribute records: the paper fixes l (6 or 12)
/// and the data must respect it.
int64_t MaxValueForDistanceBits(std::size_t m, unsigned l);

}  // namespace sknn

#endif  // SKNN_DATA_SYNTHETIC_H_
