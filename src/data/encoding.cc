#include "data/encoding.h"

#include <cmath>

namespace sknn {

Result<FixedPointEncoder> FixedPointEncoder::Create(double min_value,
                                                    double max_value,
                                                    unsigned bits) {
  if (!(min_value <= max_value)) {
    return Status::InvalidArgument("FixedPointEncoder: min > max");
  }
  if (bits == 0 || bits > 32) {
    return Status::InvalidArgument("FixedPointEncoder: bits must be in 1..32");
  }
  double levels = static_cast<double>((int64_t{1} << bits) - 1);
  double range = max_value - min_value;
  // Degenerate constant column: everything maps to 0.
  double scale = range > 0 ? levels / range : 1.0;
  return FixedPointEncoder(min_value, max_value, scale, bits);
}

Result<int64_t> FixedPointEncoder::Encode(double value) const {
  if (value < min_ || value > max_) {
    return Status::OutOfRange("FixedPointEncoder: value outside fitted range");
  }
  return static_cast<int64_t>(std::llround((value - min_) * scale_));
}

double FixedPointEncoder::Decode(int64_t encoded) const {
  return min_ + static_cast<double>(encoded) / scale_;
}

Result<TableEncoder> TableEncoder::Fit(
    const std::vector<std::vector<double>>& table, unsigned bits) {
  if (table.empty() || table[0].empty()) {
    return Status::InvalidArgument("TableEncoder: empty table");
  }
  const std::size_t m = table[0].size();
  std::vector<FixedPointEncoder> columns;
  columns.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    double lo = table[0][j], hi = table[0][j];
    for (const auto& row : table) {
      if (row.size() != m) {
        return Status::InvalidArgument("TableEncoder: ragged table");
      }
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    SKNN_ASSIGN_OR_RETURN(FixedPointEncoder enc,
                          FixedPointEncoder::Create(lo, hi, bits));
    columns.push_back(std::move(enc));
  }
  return TableEncoder(std::move(columns), bits);
}

Result<PlainRecord> TableEncoder::EncodeRow(
    const std::vector<double>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("TableEncoder: row width mismatch");
  }
  PlainRecord out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    SKNN_ASSIGN_OR_RETURN(out[j], columns_[j].Encode(row[j]));
  }
  return out;
}

Result<PlainTable> TableEncoder::Encode(
    const std::vector<std::vector<double>>& table) const {
  PlainTable out;
  out.reserve(table.size());
  for (const auto& row : table) {
    SKNN_ASSIGN_OR_RETURN(PlainRecord encoded, EncodeRow(row));
    out.push_back(std::move(encoded));
  }
  return out;
}

std::vector<std::vector<double>> TableEncoder::Decode(
    const PlainTable& table) const {
  std::vector<std::vector<double>> out;
  out.reserve(table.size());
  for (const auto& row : table) {
    std::vector<double> decoded(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      decoded[j] = columns_[j].Decode(row[j]);
    }
    out.push_back(std::move(decoded));
  }
  return out;
}

}  // namespace sknn
