#include "data/synthetic.h"

#include <algorithm>

#include "bigint/random.h"
#include "common/logging.h"

namespace sknn {

PlainTable GenerateUniformTable(std::size_t n, std::size_t m,
                                int64_t max_value, uint64_t seed) {
  SKNN_CHECK(max_value >= 0) << "max_value must be non-negative";
  Random rng(seed);
  PlainTable table(n, PlainRecord(m));
  for (auto& row : table) {
    for (auto& v : row) {
      v = static_cast<int64_t>(
          rng.UniformUint64(static_cast<uint64_t>(max_value) + 1));
    }
  }
  return table;
}

PlainRecord GenerateUniformQuery(std::size_t m, int64_t max_value,
                                 uint64_t seed) {
  return GenerateUniformTable(1, m, max_value, seed)[0];
}

PlainTable GenerateClusteredTable(std::size_t n, std::size_t m,
                                  int64_t max_value, const ClusterSpec& spec,
                                  uint64_t seed) {
  SKNN_CHECK(spec.num_clusters >= 1) << "need at least one cluster";
  Random rng(seed);
  PlainTable centroids(spec.num_clusters, PlainRecord(m));
  for (auto& c : centroids) {
    for (auto& v : c) {
      v = static_cast<int64_t>(
          rng.UniformUint64(static_cast<uint64_t>(max_value) + 1));
    }
  }
  PlainTable table(n, PlainRecord(m));
  for (std::size_t i = 0; i < n; ++i) {
    const PlainRecord& c = centroids[i % spec.num_clusters];
    for (std::size_t j = 0; j < m; ++j) {
      int64_t jitter = static_cast<int64_t>(rng.UniformUint64(
                           static_cast<uint64_t>(2 * spec.spread + 1))) -
                       spec.spread;
      table[i][j] = std::clamp<int64_t>(c[j] + jitter, 0, max_value);
    }
  }
  return table;
}

unsigned BitsForMaxValue(int64_t max_value) {
  SKNN_CHECK(max_value >= 0) << "max_value must be non-negative";
  unsigned bits = 1;
  while ((int64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

int64_t MaxValueForDistanceBits(std::size_t m, unsigned l) {
  // Need m * v^2 < 2^l  =>  v <= floor(sqrt((2^l - 1) / m)).
  SKNN_CHECK(l >= 1 && l < 62) << "l out of supported range";
  int64_t budget = ((int64_t{1} << l) - 1) / static_cast<int64_t>(m);
  int64_t v = 0;
  while ((v + 1) * (v + 1) <= budget) ++v;
  return v;
}

}  // namespace sknn
