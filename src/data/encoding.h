// Fixed-point attribute encoding. The protocols operate on non-negative
// integers in [0, 2^attr_bits); real-world attributes (cholesterol in mg/dl,
// normalized lab values, coordinates) are mapped onto that grid with a
// per-attribute affine transform. Squared distances in the encoded domain
// are squared distances in the original domain scaled by `scale`^2, so kNN
// order is preserved per attribute weighting.
#ifndef SKNN_DATA_ENCODING_H_
#define SKNN_DATA_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace sknn {

/// \brief Affine quantizer for one attribute: encoded = round((x-min)*scale).
class FixedPointEncoder {
 public:
  /// \brief Encoder mapping [min_value, max_value] onto [0, 2^bits).
  static Result<FixedPointEncoder> Create(double min_value, double max_value,
                                          unsigned bits);

  Result<int64_t> Encode(double value) const;
  double Decode(int64_t encoded) const;

  double min_value() const { return min_; }
  double max_value() const { return max_; }
  double scale() const { return scale_; }
  unsigned bits() const { return bits_; }

 private:
  FixedPointEncoder(double min_value, double max_value, double scale,
                    unsigned bits)
      : min_(min_value), max_(max_value), scale_(scale), bits_(bits) {}

  double min_;
  double max_;
  double scale_;
  unsigned bits_;
};

/// \brief Column-wise encoder for whole tables of doubles.
class TableEncoder {
 public:
  /// \brief Fits one encoder per column from the observed ranges (queries
  /// outside the range are clamped by Encode's error, not silently wrapped).
  static Result<TableEncoder> Fit(
      const std::vector<std::vector<double>>& table, unsigned bits);

  Result<PlainTable> Encode(
      const std::vector<std::vector<double>>& table) const;
  Result<PlainRecord> EncodeRow(const std::vector<double>& row) const;
  std::vector<std::vector<double>> Decode(const PlainTable& table) const;

  unsigned bits() const { return bits_; }
  std::size_t num_columns() const { return columns_.size(); }

 private:
  TableEncoder(std::vector<FixedPointEncoder> columns, unsigned bits)
      : columns_(std::move(columns)), bits_(bits) {}

  std::vector<FixedPointEncoder> columns_;
  unsigned bits_;
};

}  // namespace sknn

#endif  // SKNN_DATA_ENCODING_H_
