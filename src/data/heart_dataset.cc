#include "data/heart_dataset.h"

namespace sknn {

const std::vector<std::string>& HeartAttributeNames() {
  static const std::vector<std::string> kNames = {
      "age", "sex", "cp", "trestbps", "chol", "fbs", "slope", "ca", "thal"};
  return kNames;
}

const PlainTable& HeartFullRecords() {
  // Table 1, rows t1..t6: age sex cp trestbps chol fbs slope ca thal num.
  static const PlainTable kRecords = {
      {63, 1, 1, 145, 233, 1, 3, 0, 6, 0},
      {56, 1, 3, 130, 256, 1, 2, 1, 6, 2},
      {57, 0, 3, 140, 241, 0, 2, 0, 7, 1},
      {59, 1, 4, 144, 200, 1, 2, 2, 6, 3},
      {55, 0, 4, 128, 205, 0, 2, 1, 7, 3},
      {77, 1, 4, 125, 304, 0, 1, 3, 3, 4},
  };
  return kRecords;
}

const PlainTable& HeartFeatures() {
  static const PlainTable kFeatures = [] {
    PlainTable out;
    for (const auto& row : HeartFullRecords()) {
      out.emplace_back(row.begin(), row.end() - 1);
    }
    return out;
  }();
  return kFeatures;
}

const std::vector<int64_t>& HeartLabels() {
  static const std::vector<int64_t> kLabels = [] {
    std::vector<int64_t> out;
    for (const auto& row : HeartFullRecords()) {
      out.push_back(row.back());
    }
    return out;
  }();
  return kLabels;
}

const PlainRecord& HeartExampleQuery() {
  // Example 1: Q = <58, 1, 4, 133, 196, 1, 2, 1, 6>.
  static const PlainRecord kQuery = {58, 1, 4, 133, 196, 1, 2, 1, 6};
  return kQuery;
}

unsigned HeartAttrBits() {
  int64_t max_value = 0;
  for (const auto& row : HeartFullRecords()) {
    for (int64_t v : row) max_value = std::max(max_value, v);
  }
  unsigned bits = 1;
  while ((int64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

}  // namespace sknn
