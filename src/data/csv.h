// Minimal CSV I/O for integer tables — lets examples load external data and
// lets the benchmark harness persist result series for plotting.
#ifndef SKNN_DATA_CSV_H_
#define SKNN_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace sknn {

/// \brief Writes `table` as CSV; `header` (optional) becomes the first line.
Status WriteCsv(const std::string& path, const PlainTable& table,
                const std::vector<std::string>& header = {});

/// \brief Reads an integer CSV. If `skip_header` the first line is dropped.
Result<PlainTable> ReadCsv(const std::string& path, bool skip_header = false);

}  // namespace sknn

#endif  // SKNN_DATA_CSV_H_
