// The sample heart-disease dataset of Table 1 / Table 2 (UCI Cleveland
// subset) and the query of Example 1 — used by the quickstart example and
// by the end-to-end tests that reproduce the paper's worked example
// (2-NN of Q must be {t4, t5}).
#ifndef SKNN_DATA_HEART_DATASET_H_
#define SKNN_DATA_HEART_DATASET_H_

#include <string>
#include <vector>

#include "core/types.h"

namespace sknn {

/// \brief The 9 query-able attribute names (age .. thal), Table 2 order.
const std::vector<std::string>& HeartAttributeNames();

/// \brief The 6 records of Table 1 restricted to the 9 query-able
/// attributes (the `num` diagnosis column is the label, not a feature).
const PlainTable& HeartFeatures();

/// \brief The `num` diagnosis column of Table 1 (0 = no disease .. 4).
const std::vector<int64_t>& HeartLabels();

/// \brief The full 10-column records of Table 1 (features + num), as used
/// verbatim in the paper's Example 3 SSED walk-through.
const PlainTable& HeartFullRecords();

/// \brief Bob's query record Q from Example 1.
const PlainRecord& HeartExampleQuery();

/// \brief Smallest attr_bits covering every value in the dataset and query.
unsigned HeartAttrBits();

}  // namespace sknn

#endif  // SKNN_DATA_HEART_DATASET_H_
