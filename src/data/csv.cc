#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace sknn {

Status WriteCsv(const std::string& path, const PlainTable& table,
                const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("WriteCsv: cannot open " + path);
  }
  if (!header.empty()) {
    for (std::size_t j = 0; j < header.size(); ++j) {
      if (j > 0) out << ',';
      out << header[j];
    }
    out << '\n';
  }
  for (const auto& row : table) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IoError("WriteCsv: write failure on " + path);
  }
  return Status::OK();
}

Result<PlainTable> ReadCsv(const std::string& path, bool skip_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("ReadCsv: cannot open " + path);
  }
  PlainTable table;
  std::string line;
  bool first = true;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    PlainRecord row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        std::size_t consumed = 0;
        int64_t v = std::stoll(cell, &consumed);
        if (consumed != cell.size()) {
          return Status::InvalidArgument("ReadCsv: non-integer cell '" +
                                         cell + "'");
        }
        row.push_back(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument("ReadCsv: non-integer cell '" + cell +
                                       "'");
      }
    }
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::InvalidArgument("ReadCsv: ragged row in " + path);
    }
    table.push_back(std::move(row));
  }
  if (table.empty()) {
    return Status::InvalidArgument("ReadCsv: no data rows in " + path);
  }
  return table;
}

}  // namespace sknn
