#include "bigint/modexp.h"

#include <algorithm>
#include <functional>

namespace sknn {
namespace {

/// Digit i (width w bits) of the non-negative exponent e.
std::size_t DigitAt(const BigInt& e, std::size_t i, unsigned w) {
  std::size_t digit = 0;
  const std::size_t lo = i * w;
  for (unsigned b = 0; b < w; ++b) {
    if (e.Bit(lo + b) != 0) digit |= std::size_t{1} << b;
  }
  return digit;
}

}  // namespace

unsigned FixedBaseWindow::RecommendedWindowBits(unsigned max_exponent_bits) {
  // Per-exponent cost is ceil(bits/w) multiplications; build cost is
  // ceil(bits/w) * (2^w - 1). The refill workload amortizes the build over
  // thousands of exponentiations, so wide windows win once the exponent is
  // long enough to feed them.
  if (max_exponent_bits <= 16) return 2;
  if (max_exponent_bits <= 64) return 3;
  if (max_exponent_bits <= 128) return 4;
  return 6;
}

FixedBaseWindow::FixedBaseWindow(const BigInt& base, const BigInt& modulus,
                                 unsigned max_exponent_bits,
                                 unsigned window_bits)
    : base_(base.Mod(modulus)),
      modulus_(modulus),
      one_mod_(BigInt(1).Mod(modulus)),
      max_exponent_bits_(max_exponent_bits),
      window_bits_(window_bits == 0 ? RecommendedWindowBits(max_exponent_bits)
                                    : std::min(window_bits, 16u)),
      digits_((max_exponent_bits + window_bits_ - 1) / window_bits_) {
  const std::size_t per_digit = (std::size_t{1} << window_bits_) - 1;
  table_.reserve(digits_ * per_digit);
  // g_i = base^(2^(w*i)): the digit-position base, advanced by w squarings
  // per row. Row i holds g_i^j for j in [1, 2^w).
  BigInt g = base_;
  for (std::size_t i = 0; i < digits_; ++i) {
    table_.push_back(g);
    for (std::size_t j = 2; j <= per_digit; ++j) {
      table_.push_back(table_.back().MulMod(g, modulus_));
    }
    if (i + 1 < digits_) {
      for (unsigned s = 0; s < window_bits_; ++s) g = g.MulMod(g, modulus_);
    }
  }
}

BigInt FixedBaseWindow::PowMod(const BigInt& e) const {
  if (e.IsNegative() || e.BitLength() > max_exponent_bits_) {
    // Oversized (or pathological) exponent: correctness over speed.
    return base_.PowMod(e, modulus_);
  }
  const std::size_t per_digit = (std::size_t{1} << window_bits_) - 1;
  BigInt result = one_mod_;
  const std::size_t used = (e.BitLength() + window_bits_ - 1) / window_bits_;
  for (std::size_t i = 0; i < used; ++i) {
    const std::size_t digit = DigitAt(e, i, window_bits_);
    if (digit == 0) continue;
    result = result.MulMod(table_[i * per_digit + (digit - 1)], modulus_);
  }
  return result;
}

namespace {

std::vector<BigInt> FanOut(std::size_t count, ThreadPool* pool,
                           const std::function<BigInt(std::size_t)>& fn) {
  std::vector<BigInt> out(count);
  if (pool != nullptr && count > 1) {
    pool->ParallelFor(count, [&](std::size_t i) { out[i] = fn(i); });
  } else {
    for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
  }
  return out;
}

}  // namespace

std::vector<BigInt> PowModMany(const std::vector<BigInt>& bases,
                               const std::vector<BigInt>& exponents,
                               const BigInt& modulus, ThreadPool* pool) {
  const std::size_t count = std::min(bases.size(), exponents.size());
  return FanOut(count, pool, [&](std::size_t i) {
    return bases[i].PowMod(exponents[i], modulus);
  });
}

std::vector<BigInt> PowModMany(const std::vector<BigInt>& bases,
                               const BigInt& exponent, const BigInt& modulus,
                               ThreadPool* pool) {
  return FanOut(bases.size(), pool, [&](std::size_t i) {
    return bases[i].PowMod(exponent, modulus);
  });
}

std::vector<BigInt> PowModMany(const FixedBaseWindow& window,
                               const std::vector<BigInt>& exponents,
                               ThreadPool* pool) {
  return FanOut(exponents.size(), pool, [&](std::size_t i) {
    return window.PowMod(exponents[i]);
  });
}

}  // namespace sknn
