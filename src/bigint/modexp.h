// Modular-exponentiation acceleration layer (ROADMAP item 2, "crypto raw
// speed"). Two independent tools live here:
//
//  * FixedBaseWindow — a 2^w-ary fixed-base exponentiator. When the SAME
//    base is raised to many exponents modulo the same modulus (the
//    randomizer-pool refill pattern: h_N^s over and over), precomputing the
//    table g_{i,j} = base^(j * 2^(w*i)) mod m turns every exponentiation
//    into ~ceil(bits/w) modular multiplications with NO squarings — the
//    squaring chain that dominates a generic mpz_powm is paid once, at
//    table-build time.
//
//  * PowModMany — batched b_i^e_i mod m fanned across a caller-supplied
//    ThreadPool. One modexp is inherently serial inside GMP; a protocol
//    round carrying hundreds of independent modexps is not. This is the
//    BigInt-level primitive under Paillier::EncryptMany / RerandomizeMany
//    (crypto/paillier.h), and the seam a later SIMD/GPU backend replaces.
//
// Everything here is bitwise-compatible with BigInt::PowMod (i.e. with
// mpz_powm): same least-non-negative-residue semantics, same edge cases
// (e = 0 -> 1 mod m, base reduced mod m first). Property tests in
// tests/test_bigint.cc hold both tools to that contract.
#ifndef SKNN_BIGINT_MODEXP_H_
#define SKNN_BIGINT_MODEXP_H_

#include <cstddef>
#include <vector>

#include "bigint/bigint.h"
#include "common/thread_pool.h"

namespace sknn {

/// \brief Precomputed 2^w-ary table for exponentiating one fixed base
/// modulo one fixed modulus. Immutable after construction, so concurrent
/// PowMod calls from many threads are safe.
class FixedBaseWindow {
 public:
  /// \brief Builds the table for exponents of up to `max_exponent_bits`
  /// bits. `window_bits` in [1, 16] selects the digit width w (table holds
  /// ceil(max_exponent_bits / w) * (2^w - 1) residues); 0 picks
  /// RecommendedWindowBits(max_exponent_bits). The modulus must be
  /// positive; the base is reduced mod m up front (mpz_powm semantics).
  FixedBaseWindow(const BigInt& base, const BigInt& modulus,
                  unsigned max_exponent_bits, unsigned window_bits = 0);

  /// \brief base^e mod m. Exponents wider than max_exponent_bits() (or
  /// negative ones) fall back to the generic BigInt::PowMod — correctness
  /// never depends on the caller respecting the sizing hint.
  BigInt PowMod(const BigInt& e) const;

  /// \brief The w that balances table cost against per-exponent cost for
  /// the refill workload (many thousand exponentiations per table): per-exp
  /// multiplications are ceil(bits/w), so w = 6 is already within ~15% of
  /// the asymptote while the table stays a few hundred KB for the moduli
  /// this repo uses. Small exponent budgets get a smaller w so the build
  /// cost (ceil(bits/w) * (2^w - 1) multiplications) cannot dwarf the use.
  static unsigned RecommendedWindowBits(unsigned max_exponent_bits);

  const BigInt& base() const { return base_; }
  const BigInt& modulus() const { return modulus_; }
  unsigned max_exponent_bits() const { return max_exponent_bits_; }
  unsigned window_bits() const { return window_bits_; }
  /// \brief Number of precomputed residues (digits * (2^w - 1)).
  std::size_t table_size() const { return table_.size(); }

 private:
  BigInt base_;     // reduced mod modulus_
  BigInt modulus_;
  BigInt one_mod_;  // 1 mod m (0 when m == 1), the product identity
  unsigned max_exponent_bits_;
  unsigned window_bits_;
  std::size_t digits_;
  /// table_[i * (2^w - 1) + (j - 1)] = base^(j * 2^(w*i)) mod m,
  /// j in [1, 2^w).
  std::vector<BigInt> table_;
};

/// \brief bases[i]^exponents[i] mod modulus for every i, fanned across
/// `pool` (serial when null). The two vectors must have equal length.
std::vector<BigInt> PowModMany(const std::vector<BigInt>& bases,
                               const std::vector<BigInt>& exponents,
                               const BigInt& modulus,
                               ThreadPool* pool = nullptr);

/// \brief bases[i]^exponent mod modulus — the shared-exponent form (e.g.
/// r_i^N across a refill batch).
std::vector<BigInt> PowModMany(const std::vector<BigInt>& bases,
                               const BigInt& exponent, const BigInt& modulus,
                               ThreadPool* pool = nullptr);

/// \brief window.PowMod(exponents[i]) for every i, fanned across `pool` —
/// the batched fixed-base form the randomizer refill uses.
std::vector<BigInt> PowModMany(const FixedBaseWindow& window,
                               const std::vector<BigInt>& exponents,
                               ThreadPool* pool = nullptr);

}  // namespace sknn

#endif  // SKNN_BIGINT_MODEXP_H_
