#include "bigint/bigint.h"

#include <ostream>

namespace sknn {

Result<BigInt> BigInt::FromString(const std::string& s, int base) {
  BigInt out;
  if (s.empty() || mpz_set_str(out.value_, s.c_str(), base) != 0) {
    return Status::InvalidArgument("BigInt::FromString: unparsable '" + s +
                                   "' in base " + std::to_string(base));
  }
  return out;
}

BigInt BigInt::FromBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  if (!bytes.empty()) {
    mpz_import(out.value_, bytes.size(), /*order=*/1, /*size=*/1,
               /*endian=*/1, /*nails=*/0, bytes.data());
  }
  return out;
}

BigInt BigInt::PowerOfTwo(unsigned k) {
  BigInt out;
  mpz_setbit(out.value_, k);
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  mpz_add(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  BigInt out;
  mpz_sub(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  mpz_mul(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt out;
  mpz_tdiv_q(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out;
  mpz_neg(out.value_, value_);
  return out;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  mpz_add(value_, value_, o.value_);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& o) {
  mpz_sub(value_, value_, o.value_);
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& o) {
  mpz_mul(value_, value_, o.value_);
  return *this;
}

BigInt BigInt::Mod(const BigInt& m) const {
  BigInt out;
  mpz_mod(out.value_, value_, m.value_);  // mpz_mod is always non-negative
  return out;
}

BigInt BigInt::AddMod(const BigInt& o, const BigInt& m) const {
  BigInt out;
  mpz_add(out.value_, value_, o.value_);
  mpz_mod(out.value_, out.value_, m.value_);
  return out;
}

BigInt BigInt::SubMod(const BigInt& o, const BigInt& m) const {
  BigInt out;
  mpz_sub(out.value_, value_, o.value_);
  mpz_mod(out.value_, out.value_, m.value_);
  return out;
}

BigInt BigInt::MulMod(const BigInt& o, const BigInt& m) const {
  BigInt out;
  mpz_mul(out.value_, value_, o.value_);
  mpz_mod(out.value_, out.value_, m.value_);
  return out;
}

BigInt BigInt::PowMod(const BigInt& e, const BigInt& m) const {
  BigInt out;
  mpz_powm(out.value_, value_, e.value_, m.value_);
  return out;
}

Result<BigInt> BigInt::InvMod(const BigInt& m) const {
  BigInt out;
  if (mpz_invert(out.value_, value_, m.value_) == 0) {
    return Status::CryptoError("BigInt::InvMod: not invertible (gcd != 1)");
  }
  return out;
}

BigInt BigInt::Gcd(const BigInt& o) const {
  BigInt out;
  mpz_gcd(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::Lcm(const BigInt& o) const {
  BigInt out;
  mpz_lcm(out.value_, value_, o.value_);
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out;
  mpz_abs(out.value_, value_);
  return out;
}

std::size_t BigInt::BitLength() const {
  if (IsZero()) return 0;
  return mpz_sizeinbase(value_, 2);
}

int BigInt::Bit(std::size_t i) const {
  return mpz_tstbit(value_, i);
}

BigInt BigInt::ShiftLeft(unsigned k) const {
  BigInt out;
  mpz_mul_2exp(out.value_, value_, k);
  return out;
}

BigInt BigInt::ShiftRight(unsigned k) const {
  BigInt out;
  mpz_fdiv_q_2exp(out.value_, value_, k);
  return out;
}

Result<int64_t> BigInt::ToInt64() const {
  if (!mpz_fits_slong_p(value_)) {
    return Status::OutOfRange("BigInt::ToInt64: value does not fit");
  }
  return static_cast<int64_t>(mpz_get_si(value_));
}

Result<uint64_t> BigInt::ToUint64() const {
  if (IsNegative() || !mpz_fits_ulong_p(value_)) {
    return Status::OutOfRange("BigInt::ToUint64: value does not fit");
  }
  return static_cast<uint64_t>(mpz_get_ui(value_));
}

std::string BigInt::ToString(int base) const {
  char* raw = mpz_get_str(nullptr, base, value_);
  std::string out(raw);
  void (*free_fn)(void*, size_t);
  mp_get_memory_functions(nullptr, nullptr, &free_fn);
  free_fn(raw, out.size() + 1);
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  if (IsZero()) return {};
  std::size_t count = (mpz_sizeinbase(value_, 2) + 7) / 8;
  std::vector<uint8_t> out(count);
  std::size_t written = 0;
  mpz_export(out.data(), &written, /*order=*/1, /*size=*/1, /*endian=*/1,
             /*nails=*/0, value_);
  out.resize(written);
  return out;
}

bool BigInt::IsProbablePrime(int reps) const {
  return mpz_probab_prime_p(value_, reps) > 0;
}

BigInt BigInt::NextPrime() const {
  BigInt out;
  mpz_nextprime(out.value_, value_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace sknn
