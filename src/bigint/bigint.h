// RAII arbitrary-precision integer over GMP's mpz_t.
//
// All Paillier and protocol arithmetic goes through this type; raw mpz_t
// never escapes this module. Semantics follow mathematical integers with
// explicit modular helpers (Mod always returns the least non-negative
// residue, as the protocols require values in Z_N).
#ifndef SKNN_BIGINT_BIGINT_H_
#define SKNN_BIGINT_BIGINT_H_

#include <gmp.h>

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace sknn {

class BigInt {
 public:
  BigInt() { mpz_init(value_); }
  BigInt(int v) { mpz_init_set_si(value_, v); }      // NOLINT: implicit
  BigInt(int64_t v) { mpz_init_set_si(value_, v); }  // NOLINT: implicit
  explicit BigInt(uint64_t v) { mpz_init_set_ui(value_, v); }

  BigInt(const BigInt& other) { mpz_init_set(value_, other.value_); }
  BigInt(BigInt&& other) noexcept {
    mpz_init(value_);
    mpz_swap(value_, other.value_);
  }
  BigInt& operator=(const BigInt& other) {
    if (this != &other) mpz_set(value_, other.value_);
    return *this;
  }
  BigInt& operator=(BigInt&& other) noexcept {
    if (this != &other) mpz_swap(value_, other.value_);
    return *this;
  }
  ~BigInt() { mpz_clear(value_); }

  /// \brief Parses from a string in the given base (10 or 16 typical).
  static Result<BigInt> FromString(const std::string& s, int base = 10);

  /// \brief Deserializes a non-negative integer from big-endian bytes.
  static BigInt FromBytes(const std::vector<uint8_t>& bytes);

  /// \brief 2^k.
  static BigInt PowerOfTwo(unsigned k);

  // -- Arithmetic (mathematical integers) --
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator/(const BigInt& o) const;  // truncated toward zero
  BigInt operator-() const;
  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o);

  // -- Modular arithmetic (results in [0, m)) --
  BigInt Mod(const BigInt& m) const;
  BigInt AddMod(const BigInt& o, const BigInt& m) const;
  BigInt SubMod(const BigInt& o, const BigInt& m) const;
  BigInt MulMod(const BigInt& o, const BigInt& m) const;
  /// \brief this^e mod m. e must be non-negative.
  BigInt PowMod(const BigInt& e, const BigInt& m) const;
  /// \brief Modular inverse; error if gcd(this, m) != 1.
  Result<BigInt> InvMod(const BigInt& m) const;

  BigInt Gcd(const BigInt& o) const;
  BigInt Lcm(const BigInt& o) const;
  BigInt Abs() const;

  // -- Bit manipulation --
  /// \brief Number of bits in |this| (0 for zero).
  std::size_t BitLength() const;
  /// \brief Bit i of |this| (i = 0 is the least significant bit).
  int Bit(std::size_t i) const;
  BigInt ShiftLeft(unsigned k) const;
  BigInt ShiftRight(unsigned k) const;
  bool IsOdd() const { return mpz_odd_p(value_) != 0; }
  bool IsEven() const { return mpz_even_p(value_) != 0; }
  bool IsZero() const { return mpz_sgn(value_) == 0; }
  bool IsNegative() const { return mpz_sgn(value_) < 0; }

  // -- Comparisons --
  int Compare(const BigInt& o) const { return mpz_cmp(value_, o.value_); }
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  // -- Conversions --
  /// \brief Value as int64; error if out of range.
  Result<int64_t> ToInt64() const;
  /// \brief Value as uint64; error if negative or out of range.
  Result<uint64_t> ToUint64() const;
  std::string ToString(int base = 10) const;
  /// \brief Big-endian magnitude bytes (empty for zero). Sign is dropped;
  /// protocol values are always in [0, N).
  std::vector<uint8_t> ToBytes() const;

  // -- Number theory --
  /// \brief Miller-Rabin with `reps` rounds (GMP semantics: 2 = probably
  /// prime, 1 = maybe, 0 = composite). Returns true for probable primes.
  bool IsProbablePrime(int reps = 30) const;
  BigInt NextPrime() const;

  /// \brief Exposes the raw mpz_t to the Random module only.
  const mpz_t& raw() const { return value_; }
  mpz_t& raw() { return value_; }

 private:
  mpz_t value_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace sknn

#endif  // SKNN_BIGINT_BIGINT_H_
