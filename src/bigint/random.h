// Randomness for the cryptosystem and protocols.
//
// A Random instance wraps a GMP Mersenne-Twister state seeded with entropy
// from the OS (/dev/urandom). Instances are NOT thread-safe; use
// Random::ThreadLocal() from protocol code so parallel record fan-out never
// contends or shares a stream.
#ifndef SKNN_BIGINT_RANDOM_H_
#define SKNN_BIGINT_RANDOM_H_

#include <gmp.h>

#include <cstdint>

#include "bigint/bigint.h"

namespace sknn {

class Random {
 public:
  /// \brief Seeds from OS entropy.
  Random();
  /// \brief Deterministic seed, for reproducible tests and benchmarks only.
  explicit Random(uint64_t seed);
  ~Random();

  Random(const Random&) = delete;
  Random& operator=(const Random&) = delete;

  /// \brief Uniform value in [0, bound). bound must be positive.
  BigInt Below(const BigInt& bound);

  /// \brief Uniform value in [1, bound).
  BigInt NonZeroBelow(const BigInt& bound);

  /// \brief Uniform value in [1, n) with gcd(value, n) = 1 — a unit of Z_n,
  /// as Paillier encryption randomness requires.
  BigInt UnitModulo(const BigInt& n);

  /// \brief Uniform value with exactly `bits` bits (top bit set).
  BigInt Bits(unsigned bits);

  /// \brief Random probable prime with exactly `bits` bits.
  BigInt Prime(unsigned bits);

  /// \brief Uniform uint64 in [0, bound). bound must be positive.
  uint64_t UniformUint64(uint64_t bound);

  /// \brief Per-thread instance seeded from OS entropy.
  static Random& ThreadLocal();

 private:
  gmp_randstate_t state_;
};

}  // namespace sknn

#endif  // SKNN_BIGINT_RANDOM_H_
