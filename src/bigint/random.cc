#include "bigint/random.h"

#include <fstream>
#include <random>
#include <vector>

#include "common/logging.h"

namespace sknn {
namespace {

BigInt OsEntropy(std::size_t bytes) {
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  std::vector<uint8_t> buf(bytes);
  if (urandom.read(reinterpret_cast<char*>(buf.data()), buf.size())) {
    return BigInt::FromBytes(buf);
  }
  // Fallback: std::random_device (still non-deterministic on this platform).
  SKNN_LOG(Warning) << "/dev/urandom unavailable; seeding from random_device";
  std::random_device rd;
  for (auto& b : buf) b = static_cast<uint8_t>(rd());
  return BigInt::FromBytes(buf);
}

}  // namespace

Random::Random() {
  gmp_randinit_mt(state_);
  BigInt seed = OsEntropy(32);
  gmp_randseed(state_, seed.raw());
}

Random::Random(uint64_t seed) {
  gmp_randinit_mt(state_);
  gmp_randseed_ui(state_, seed);
}

Random::~Random() { gmp_randclear(state_); }

BigInt Random::Below(const BigInt& bound) {
  SKNN_CHECK(!bound.IsZero() && !bound.IsNegative()) << "bound must be > 0";
  BigInt out;
  mpz_urandomm(out.raw(), state_, bound.raw());
  return out;
}

BigInt Random::NonZeroBelow(const BigInt& bound) {
  for (;;) {
    BigInt v = Below(bound);
    if (!v.IsZero()) return v;
  }
}

BigInt Random::UnitModulo(const BigInt& n) {
  for (;;) {
    BigInt v = NonZeroBelow(n);
    if (v.Gcd(n) == BigInt(1)) return v;
  }
}

BigInt Random::Bits(unsigned bits) {
  SKNN_CHECK(bits > 0) << "bits must be > 0";
  BigInt out;
  mpz_urandomb(out.raw(), state_, bits);
  mpz_setbit(out.raw(), bits - 1);  // force exact bit length
  return out;
}

BigInt Random::Prime(unsigned bits) {
  for (;;) {
    BigInt candidate = Bits(bits);
    mpz_setbit(candidate.raw(), 0);  // odd
    if (candidate.IsProbablePrime()) return candidate;
    BigInt next = candidate.NextPrime();
    if (next.BitLength() == bits) return next;
    // NextPrime overflowed the bit length; resample.
  }
}

uint64_t Random::UniformUint64(uint64_t bound) {
  SKNN_CHECK(bound > 0) << "bound must be > 0";
  BigInt v = Below(BigInt(bound));
  return v.ToUint64().value();
}

Random& Random::ThreadLocal() {
  thread_local Random instance;
  return instance;
}

}  // namespace sknn
